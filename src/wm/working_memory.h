// WorkingMemory: the production system's database.
//
// A catalog of relations, the live WME versions, and optional per-
// attribute hash indexes. Reads take a shared lock; Apply (the commit
// path) takes an exclusive lock, so readers always observe a committed
// snapshot boundary. Engines additionally serialize Apply calls with
// their commit sequencer so commit order is total and replayable.
//
// Versioned snapshot reads: every commit (one Apply call, or one direct
// Insert/Delete) is stamped with a monotonic commit sequence number
// (CSN). Each WME version records the CSN interval [created, deleted) in
// which it was live, and a WmSnapshot pins a CSN and reads the database
// exactly as of that commit — Get/Scan/IsCurrent on a snapshot never
// block behind, and are never torn by, later commits. Matchers and Rc
// revalidation use snapshots so consistency checks need not hold the
// engine's commit sequencer. Dead versions are retained only while some
// live WmSnapshot can still see them; the version chains are pruned as
// snapshots are destroyed (amortized O(1) per dead version).

#ifndef DBPS_WM_WORKING_MEMORY_H_
#define DBPS_WM_WORKING_MEMORY_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"
#include "wm/delta.h"
#include "wm/schema.h"
#include "wm/wme.h"

namespace dbps {

class WorkingMemory;

/// \brief A consistent read view of WorkingMemory as of one commit.
///
/// Obtained from WorkingMemory::SnapshotAt(); pins its CSN so the WM
/// retains every version the snapshot can see. Reads take the WM's
/// shared (reader) lock only — never any engine commit lock — so they
/// run concurrently with commits and with each other. Move-only; must
/// not outlive the WorkingMemory it came from. A default-constructed
/// snapshot is empty (sees nothing).
class WmSnapshot {
 public:
  WmSnapshot() = default;
  WmSnapshot(WmSnapshot&& other) noexcept;
  WmSnapshot& operator=(WmSnapshot&& other) noexcept;
  WmSnapshot(const WmSnapshot&) = delete;
  WmSnapshot& operator=(const WmSnapshot&) = delete;
  ~WmSnapshot();

  /// The commit sequence number this snapshot reads at.
  uint64_t csn() const { return csn_; }
  bool valid() const { return wm_ != nullptr; }

  /// Schema catalog of the owning WorkingMemory. The schema is immutable
  /// once a program runs, so it is the same at every CSN; exposed here so
  /// matcher workers can enumerate relations without touching the live
  /// database. Requires valid().
  const Catalog& catalog() const;

  /// The version of WME `id` visible at csn(), or nullptr.
  WmePtr Get(WmeId id) const;

  /// True iff WME `id` was live with time tag `tag` at csn().
  bool IsCurrent(WmeId id, TimeTag tag) const;

  /// All WMEs of `relation` live at csn() (unspecified order).
  std::vector<WmePtr> Scan(SymbolId relation) const;

  size_t Count(SymbolId relation) const;

 private:
  friend class WorkingMemory;
  WmSnapshot(const WorkingMemory* wm, uint64_t csn) : wm_(wm), csn_(csn) {}

  const WorkingMemory* wm_ = nullptr;
  uint64_t csn_ = 0;
};

/// \brief The working-memory database.
class WorkingMemory {
 public:
  WorkingMemory() = default;

  WorkingMemory(const WorkingMemory&) = delete;
  WorkingMemory& operator=(const WorkingMemory&) = delete;

  // --- Schema -----------------------------------------------------------

  Status CreateRelation(RelationSchema schema);

  /// Declares relation `name` with attributes (name, type) pairs.
  Status CreateRelation(
      std::string_view name,
      const std::vector<std::pair<std::string, AttrType>>& attrs);

  const Catalog& catalog() const { return catalog_; }

  /// Creates a hash index on (relation, attr); NotFound if either is
  /// unknown. Existing WMEs are indexed immediately.
  Status CreateIndex(SymbolId relation, SymbolId attr);

  // --- Direct mutation (setup / single-thread engine) --------------------

  /// Inserts one tuple; returns the new WME version.
  StatusOr<WmePtr> Insert(SymbolId relation, std::vector<Value> values);

  /// Convenience: relation by name, values as given.
  StatusOr<WmePtr> Insert(std::string_view relation,
                          std::vector<Value> values);

  /// Removes WME `id`; returns the removed version.
  StatusOr<WmePtr> Delete(WmeId id);

  // --- Reads --------------------------------------------------------------

  /// Live version of WME `id`, or nullptr if absent.
  WmePtr Get(WmeId id) const;

  /// True iff WME `id` is live with time tag `tag` (validation check).
  bool IsCurrent(WmeId id, TimeTag tag) const;

  /// All live WMEs of `relation` (unspecified order).
  std::vector<WmePtr> Scan(SymbolId relation) const;

  /// Live WMEs of `relation` whose field `attr_index` equals `v`.
  /// Uses the hash index when one exists, otherwise scans.
  std::vector<WmePtr> Lookup(SymbolId relation, size_t attr_index,
                             const Value& v) const;

  size_t Count(SymbolId relation) const;
  size_t TotalCount() const;

  // --- Versioned snapshot reads -------------------------------------------

  /// Commit sequence number of the last committed change (0 = pristine).
  uint64_t csn() const { return csn_.load(std::memory_order_acquire); }

  /// Pins the current CSN and returns a consistent read view of the
  /// database as of that commit. Dead versions a live snapshot can see
  /// are retained until the snapshot is destroyed. The snapshot must not
  /// outlive this WorkingMemory.
  WmSnapshot SnapshotAt() const;

  /// Dead versions currently retained for snapshot readers (tests /
  /// observability of the pruning horizon).
  size_t retained_versions() const;

  // --- Commit path ---------------------------------------------------------

  /// Applies every operation of `delta` atomically as one commit,
  /// stamping the returned change (and every created/killed version) with
  /// the next CSN. Ids for creates are assigned here, in op order, so
  /// identical deltas applied in identical order always assign identical
  /// ids (replay determinism).
  ///
  /// Fails (with no changes applied) if a modify/delete names a dead WME
  /// or a create violates its schema.
  StatusOr<WmChange> Apply(const Delta& delta);

  /// Deep-copies schema + live WMEs + id/CSN counters (WME versions
  /// shared). Version history and active snapshots are not cloned.
  std::unique_ptr<WorkingMemory> Clone() const;

  /// Copies the schema catalog (and declared index keys) only — no WMEs,
  /// no counters. PartitionedMatcher builds empty sub-partition matchers
  /// against such a husk and then feeds them their value-hash share of
  /// the routed WMEs as ordinary adds.
  std::unique_ptr<WorkingMemory> CloneSchemaOnly() const;

  // --- Recovery (server/recovery.h) ---------------------------------------
  //
  // Journal replay references WMEs by id, so rebuilding state from a
  // checkpoint must reproduce ids and time tags EXACTLY — Insert()'s
  // fresh-id assignment would break every modify/delete that follows the
  // checkpoint. These are setup-time calls (no concurrent readers).

  /// Re-creates one WME with its original identity. Fails if the id is
  /// already live or the tuple violates the relation's schema. Bumps
  /// next_id/next_tag past the restored identity but does not advance the
  /// CSN (the checkpoint's counters arrive via RestoreCounters).
  Status RestoreWme(SymbolId relation, WmeId id, TimeTag tag,
                    std::vector<Value> values);

  /// Overwrites the id/tag/CSN counters with checkpoint metadata so
  /// post-recovery commits continue the original numbering.
  void RestoreCounters(WmeId next_id, TimeTag next_tag, uint64_t csn);

  /// Deletes every live WME without recording version history (recovery
  /// wipes the program's initial facts before loading a checkpoint).
  void ClearForRestore();

  WmeId next_id() const;
  TimeTag next_tag() const;

  std::string ToString() const;

 private:
  friend class WmSnapshot;

  struct IndexKey {
    SymbolId relation;
    size_t field;
    bool operator==(const IndexKey& o) const {
      return relation == o.relation && field == o.field;
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& k) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(k.relation) << 20) ^
                                   k.field);
    }
  };
  using ValueIndex = std::unordered_map<Value, std::unordered_set<WmeId>, ValueHash>;

  /// A version that is no longer live, retained for snapshot readers.
  /// Visible to a snapshot at S iff created_csn <= S < deleted_csn.
  struct DeadVersion {
    WmePtr wme;
    uint64_t created_csn;
    uint64_t deleted_csn;
  };

  // All require holding mu_ exclusively.
  StatusOr<WmePtr> InsertLocked(SymbolId relation, std::vector<Value> values,
                                uint64_t csn);
  StatusOr<WmePtr> DeleteLocked(WmeId id, uint64_t csn);
  void IndexAdd(const WmePtr& wme);
  void IndexRemove(const WmePtr& wme);
  /// Moves a dying version into the history chains at `csn`.
  void KillVersionLocked(const WmePtr& wme, uint64_t created_csn,
                         uint64_t csn);
  /// Drops dead versions no live snapshot can see. Requires mu_ held
  /// exclusively; takes snap_mu_ internally (order: mu_ -> snap_mu_).
  void PruneHistoryLocked(uint64_t next_csn);

  /// The version of `id` visible at `csn` (live or dead), or nullptr.
  /// Requires mu_ held (shared suffices).
  WmePtr VisibleVersionLocked(WmeId id, uint64_t csn) const;

  /// Smallest CSN any live snapshot reads at, or `fallback` if none.
  uint64_t SnapshotHorizon(uint64_t fallback) const;

  void RegisterSnapshot(uint64_t csn) const;
  void UnregisterSnapshot(uint64_t csn) const;

  mutable std::shared_mutex mu_;
  Catalog catalog_;
  std::unordered_map<WmeId, WmePtr> live_;
  /// CSN at which the current live version of each WME was created.
  std::unordered_map<WmeId, uint64_t> live_created_csn_;
  std::unordered_map<SymbolId, std::unordered_set<WmeId>> by_relation_;
  std::unordered_map<IndexKey, ValueIndex, IndexKeyHash> indexes_;
  /// Dead version chains (oldest first) per WME id, and the ids with dead
  /// versions per relation — only populated while snapshots are live.
  std::unordered_map<WmeId, std::vector<DeadVersion>> history_;
  std::unordered_map<SymbolId, std::unordered_set<WmeId>> dead_by_relation_;
  /// Dead versions in deletion (CSN) order, for amortized-O(1) pruning.
  std::deque<std::pair<uint64_t, WmeId>> dead_order_;
  WmeId next_id_ = 1;
  TimeTag next_tag_ = 1;
  /// Last committed CSN; written under mu_ exclusive, readable lock-free.
  std::atomic<uint64_t> csn_{0};

  /// Active snapshot CSNs (multiset: snapshots may share a CSN). Guarded
  /// by snap_mu_, never by mu_ — snapshot destruction must not block
  /// behind commits. Lock order: mu_ -> snap_mu_.
  mutable std::mutex snap_mu_;
  mutable std::multiset<uint64_t> active_snapshots_;
};

}  // namespace dbps

#endif  // DBPS_WM_WORKING_MEMORY_H_
