#include <gtest/gtest.h>

#include "analysis/access_sets.h"
#include "analysis/lock_sets.h"
#include "analysis/partitioner.h"
#include "lang/compiler.h"
#include "match/matcher.h"
#include "util/logging.h"

namespace dbps {
namespace {

constexpr const char* kSchema = R"(
(relation stock (sku int) (qty int) (site symbol))
(relation order (sku int) (qty int))
(relation alarm (sku int))
(relation audit (sku int))
)";

CompiledProgram MustCompile(const std::string& body) {
  auto program = CompileProgram(std::string(kSchema) + body);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).ValueOrDie();
}

// --- RuleAccess (static, rule text) ----------------------------------------

TEST(RuleAccess, ReadsTestedAttributesNotPureBindings) {
  auto program = MustCompile(R"(
    (rule r (stock ^sku <s> ^qty { > <s> }) --> (modify 1 ^qty 0)))");
  RuleAccess access = AnalyzeRule(*program.rules->Find("r"));
  const AttrFootprint& reads = access.reads.at(Sym("stock"));
  EXPECT_FALSE(reads.whole);
  EXPECT_TRUE(reads.fields.count(0) > 0);  // sku, via the intra test
  EXPECT_TRUE(reads.fields.count(1) > 0);  // qty
  // site (field 2) is neither tested nor bound: not a read.
  EXPECT_FALSE(reads.fields.count(2) > 0);
  const AttrFootprint& writes = access.writes.at(Sym("stock"));
  EXPECT_TRUE(writes.fields.count(1) > 0);
  EXPECT_FALSE(writes.fields.count(0) > 0);
}

TEST(RuleAccess, UnusedBindingIsNotARead) {
  // ^sku <s> merely names the attribute; nothing depends on its value,
  // so a writer of sku does not interfere with this rule.
  auto program = MustCompile(R"(
    (rule r (stock ^sku <s> ^qty { > 0 }) --> (modify 1 ^qty 0)))");
  RuleAccess access = AnalyzeRule(*program.rules->Find("r"));
  EXPECT_FALSE(access.reads.at(Sym("stock")).fields.count(0) > 0);
}

TEST(RuleAccess, NegationReadsWholeRelation) {
  auto program = MustCompile(R"(
    (rule r (order ^sku <s>) -(alarm ^sku <s>) --> (remove 1)))");
  RuleAccess access = AnalyzeRule(*program.rules->Find("r"));
  EXPECT_TRUE(access.reads.at(Sym("alarm")).whole);
}

TEST(RuleAccess, MakeAndRemoveWriteWholeRelation) {
  auto program = MustCompile(R"(
    (rule r (order ^sku <s>) --> (make alarm ^sku <s>) (remove 1)))");
  RuleAccess access = AnalyzeRule(*program.rules->Find("r"));
  EXPECT_TRUE(access.writes.at(Sym("alarm")).whole);
  EXPECT_TRUE(access.writes.at(Sym("order")).whole);
  // The expression <s> is a read of order.sku.
  EXPECT_TRUE(access.reads.at(Sym("order")).fields.count(0) > 0);
}

TEST(RuleAccess, InterferenceIsWriteVsReadOrWrite) {
  auto program = MustCompile(R"(
    (rule writer (stock ^sku <s>) --> (modify 1 ^qty 9))
    (rule reader (stock ^qty { > 0 }) --> (make audit ^sku 1))
    (rule bystander (order ^sku <s>) --> (make alarm ^sku <s>)))");
  RuleAccess writer = AnalyzeRule(*program.rules->Find("writer"));
  RuleAccess reader = AnalyzeRule(*program.rules->Find("reader"));
  RuleAccess bystander = AnalyzeRule(*program.rules->Find("bystander"));
  EXPECT_TRUE(Interferes(writer, reader));   // write qty vs read qty
  EXPECT_TRUE(Interferes(reader, writer));   // symmetric
  EXPECT_FALSE(Interferes(writer, bystander));
  EXPECT_FALSE(Interferes(reader, bystander));
}

TEST(RuleAccess, DisjointAttributesDoNotInterfere) {
  auto program = MustCompile(R"(
    (rule site-writer (stock ^sku <s>) --> (modify 1 ^site depot))
    (rule qty-reader (stock ^qty { > 0 }) --> (make audit ^sku 1)))");
  // site-writer writes stock.site and reads stock.sku; qty-reader reads
  // stock.qty — attribute-granular analysis proves them independent.
  EXPECT_FALSE(
      Interferes(AnalyzeRule(*program.rules->Find("site-writer")),
                 AnalyzeRule(*program.rules->Find("qty-reader"))));
}

TEST(AttrFootprint, WholeOverlapsEverything) {
  AttrFootprint whole;
  whole.AddWhole();
  AttrFootprint one;
  one.AddField(3);
  AttrFootprint empty;
  EXPECT_TRUE(whole.Overlaps(one));
  EXPECT_TRUE(one.Overlaps(whole));
  EXPECT_FALSE(whole.Overlaps(empty));
  EXPECT_FALSE(empty.Overlaps(one));
  AttrFootprint other;
  other.AddField(4);
  EXPECT_FALSE(one.Overlaps(other));
  other.AddField(3);
  EXPECT_TRUE(one.Overlaps(other));
}

// --- PartitionRules -------------------------------------------------------

TEST(Partitioner, GroupsAreNonInterfering) {
  auto program = MustCompile(R"(
    (rule w1 (stock ^sku <s>) --> (modify 1 ^qty 1))
    (rule w2 (stock ^sku <s>) --> (modify 1 ^qty 2))
    (rule o1 (order ^sku <s>) --> (remove 1))
    (rule a1 (alarm ^sku <s>) --> (remove 1)))");
  InterferenceGraph graph(*program.rules);
  EXPECT_EQ(graph.num_rules(), 4u);
  EXPECT_TRUE(graph.Interfere(0, 1));   // both write stock.qty
  EXPECT_FALSE(graph.Interfere(0, 2));

  auto groups = PartitionRules(*program.rules);
  // Every group must be pairwise non-interfering.
  for (const auto& group : groups) {
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        EXPECT_FALSE(graph.Interfere(group[i], group[j]));
      }
    }
  }
  // Every rule appears exactly once.
  size_t total = 0;
  for (const auto& group : groups) total += group.size();
  EXPECT_EQ(total, 4u);
  // w1/w2 interfere, so at least two groups.
  EXPECT_GE(groups.size(), 2u);
  // o1 and a1 are independent of everything: with greedy coloring they
  // land in the first group, so we need at most 2 groups here.
  EXPECT_LE(groups.size(), 2u);
}

TEST(Partitioner, AllIndependentRulesYieldOneGroup) {
  auto program = MustCompile(R"(
    (rule r1 (stock ^sku 1) --> (modify 1 ^qty 0))
    (rule r2 (order ^sku 1) --> (remove 1))
    (rule r3 (alarm ^sku 1) --> (remove 1)))");
  // r1 writes stock.qty but also only reads stock.sku — r1 vs r1 isn't
  // asked; all pairs are disjoint relations...
  auto groups = PartitionRules(*program.rules);
  EXPECT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

// --- InstAccess (dynamic) ----------------------------------------------

struct InstFixture {
  WorkingMemory wm;
  RuleSetPtr rules;
  std::vector<InstPtr> insts;

  explicit InstFixture(const std::string& body) {
    auto rules_or = LoadProgram(std::string(kSchema) + body, &wm);
    DBPS_CHECK(rules_or.ok()) << rules_or.status();
    rules = rules_or.ValueOrDie();
    auto matcher = CreateMatcher(MatcherKind::kNaive);
    DBPS_CHECK(matcher->Initialize(rules, wm).ok());
    insts = matcher->conflict_set().Snapshot();
  }
};

TEST(InstAccess, ReadsMatchedTuplesWritesTargets) {
  InstFixture fixture(R"(
    (rule r (stock ^sku <s>) (order ^sku <s>) --> (modify 1 ^qty 0) (remove 2))
    (make stock ^sku 1 ^qty 5 ^site a)
    (make order ^sku 1 ^qty 2))");
  ASSERT_EQ(fixture.insts.size(), 1u);
  InstAccess access = AnalyzeInstantiation(*fixture.insts[0]);
  ASSERT_EQ(access.reads.size(), 2u);
  ASSERT_EQ(access.writes.size(), 2u);
  for (const auto& object : access.writes) {
    EXPECT_FALSE(object.is_relation_level());
  }
}

TEST(InstAccess, NegationAndCreateEscalateToRelationLevel) {
  InstFixture fixture(R"(
    (rule r (order ^sku <s>) -(alarm ^sku <s>) --> (make audit ^sku <s>))
    (make order ^sku 1 ^qty 2))");
  ASSERT_EQ(fixture.insts.size(), 1u);
  InstAccess access = AnalyzeInstantiation(*fixture.insts[0]);
  bool has_alarm_read = false;
  for (const auto& object : access.reads) {
    if (object.relation == Sym("alarm")) {
      EXPECT_TRUE(object.is_relation_level());
      has_alarm_read = true;
    }
  }
  EXPECT_TRUE(has_alarm_read);
  ASSERT_EQ(access.writes.size(), 1u);
  EXPECT_EQ(access.writes[0].relation, Sym("audit"));
  EXPECT_TRUE(access.writes[0].is_relation_level());
}

TEST(InstAccess, ObjectsOverlapHierarchy) {
  LockObjectId tuple{Sym("stock"), 7};
  LockObjectId other_tuple{Sym("stock"), 8};
  LockObjectId relation{Sym("stock"), kRelationLevel};
  LockObjectId foreign{Sym("order"), 7};
  EXPECT_TRUE(ObjectsOverlap(tuple, tuple));
  EXPECT_FALSE(ObjectsOverlap(tuple, other_tuple));
  EXPECT_TRUE(ObjectsOverlap(tuple, relation));
  EXPECT_TRUE(ObjectsOverlap(relation, other_tuple));
  EXPECT_FALSE(ObjectsOverlap(tuple, foreign));
}

TEST(SelectNonInterfering, PicksGreedyIndependentSubset) {
  InstFixture fixture(R"(
    (rule touch (stock ^sku <s>) --> (modify 1 ^qty 0))
    (make stock ^sku 1 ^qty 5 ^site a)
    (make stock ^sku 2 ^qty 5 ^site a)
    (make stock ^sku 3 ^qty 5 ^site a))");
  // Three instantiations of `touch`, each writing a different tuple: all
  // co-selectable.
  ASSERT_EQ(fixture.insts.size(), 3u);
  EXPECT_EQ(SelectNonInterfering(fixture.insts).size(), 3u);
}

TEST(SelectNonInterfering, ConflictingCreatorsSerialize) {
  InstFixture fixture(R"(
    (rule mint (order ^sku <s>) --> (make alarm ^sku <s>) (remove 1))
    (make order ^sku 1 ^qty 1)
    (make order ^sku 2 ^qty 1))");
  // Both firings create into `alarm` (relation-level write-write).
  ASSERT_EQ(fixture.insts.size(), 2u);
  EXPECT_EQ(SelectNonInterfering(fixture.insts).size(), 1u);
}

// --- Lock sets -------------------------------------------------------------

TEST(LockSets, ConditionLocksAreRcOnMatchedPlusNegatedRelations) {
  InstFixture fixture(R"(
    (rule r (order ^sku <s>) -(alarm ^sku <s>) --> (remove 1))
    (make order ^sku 1 ^qty 1))");
  ASSERT_EQ(fixture.insts.size(), 1u);
  auto locks = ConditionLocks(*fixture.insts[0]);
  ASSERT_EQ(locks.size(), 2u);
  for (const auto& request : locks) {
    EXPECT_EQ(request.mode, LockMode::kRc);
  }
  // Canonical order: sorted by object; one tuple lock + one relation lock.
  bool saw_relation_level = false, saw_tuple = false;
  for (const auto& request : locks) {
    if (request.object.is_relation_level()) {
      EXPECT_EQ(request.object.relation, Sym("alarm"));
      saw_relation_level = true;
    } else {
      EXPECT_EQ(request.object.relation, Sym("order"));
      saw_tuple = true;
    }
  }
  EXPECT_TRUE(saw_relation_level && saw_tuple);
}

TEST(LockSets, ActionLocksWaOnTargetsRaOnReads) {
  InstFixture fixture(R"(
    (rule r (stock ^sku <s> ^qty <q>) (order ^qty <oq>)
      -->
      (modify 1 ^qty (+ <q> <oq>)))
    (make stock ^sku 1 ^qty 5 ^site a)
    (make order ^sku 9 ^qty 2))");
  ASSERT_EQ(fixture.insts.size(), 1u);
  auto locks = ActionLocks(*fixture.insts[0], /*txn=*/42);
  // Wa on the modified stock tuple; Ra on the order tuple it reads.
  ASSERT_EQ(locks.size(), 2u);
  int wa = 0, ra = 0;
  for (const auto& request : locks) {
    if (request.mode == LockMode::kWa) {
      EXPECT_EQ(request.object.relation, Sym("stock"));
      ++wa;
    } else if (request.mode == LockMode::kRa) {
      EXPECT_EQ(request.object.relation, Sym("order"));
      ++ra;
    }
  }
  EXPECT_EQ(wa, 1);
  EXPECT_EQ(ra, 1);
}

TEST(LockSets, WaSubsumesRaOnSameTuple) {
  InstFixture fixture(R"(
    (rule r (stock ^sku <s> ^qty <q>) --> (modify 1 ^qty (+ <q> 1)))
    (make stock ^sku 1 ^qty 5 ^site a))");
  auto locks = ActionLocks(*fixture.insts[0], 1);
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0].mode, LockMode::kWa);
}

TEST(LockSets, CreateTakesPerTxnInsertIntent) {
  InstFixture fixture(R"(
    (rule r (order ^sku <s>) --> (make alarm ^sku <s>))
    (make order ^sku 1 ^qty 1))");
  auto locks_a = ActionLocks(*fixture.insts[0], 7);
  auto locks_b = ActionLocks(*fixture.insts[0], 8);
  // An insert intent Wa plus an Ra on the matched order tuple whose value
  // feeds the make expression.
  ASSERT_EQ(locks_a.size(), 2u);
  const LockRequest* intent = nullptr;
  const LockRequest* read = nullptr;
  for (const auto& request : locks_a) {
    if (request.object.is_insert_intent()) {
      intent = &request;
    } else {
      read = &request;
    }
  }
  ASSERT_NE(intent, nullptr);
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(intent->mode, LockMode::kWa);
  EXPECT_EQ(intent->object.wme, kInsertLockBase + 7);
  EXPECT_EQ(read->mode, LockMode::kRa);
  EXPECT_EQ(read->object.relation, Sym("order"));
  bool found_b_intent = false;
  for (const auto& request : locks_b) {
    if (request.object.is_insert_intent()) {
      EXPECT_EQ(request.object.wme, kInsertLockBase + 8);
      found_b_intent = true;
    }
  }
  EXPECT_TRUE(found_b_intent);
}

TEST(LockSets, RemoveTakesWaNoRa) {
  InstFixture fixture(R"(
    (rule r (order ^sku <s>) --> (remove 1))
    (make order ^sku 1 ^qty 1))");
  auto locks = ActionLocks(*fixture.insts[0], 1);
  ASSERT_EQ(locks.size(), 1u);
  EXPECT_EQ(locks[0].mode, LockMode::kWa);
  EXPECT_FALSE(locks[0].object.is_relation_level());
}

}  // namespace
}  // namespace dbps
