// Rc lock escalation (§4.3) — the lock-set transformation and its
// engine-level consequences.

#include <gtest/gtest.h>

#include "analysis/lock_sets.h"
#include "engine/parallel_engine.h"
#include "lang/compiler.h"
#include "match/matcher.h"
#include "semantics/replay_validator.h"
#include "util/logging.h"

namespace dbps {
namespace {

std::vector<LockRequest> TupleRcs(const char* relation, int count) {
  std::vector<LockRequest> requests;
  for (int i = 1; i <= count; ++i) {
    requests.push_back(LockRequest{
        LockObjectId{Sym(relation), static_cast<WmeId>(i)}, LockMode::kRc});
  }
  return requests;
}

TEST(Escalation, ThresholdZeroDisables) {
  auto requests = TupleRcs("esc-r", 10);
  EXPECT_EQ(EscalateConditionLocks(requests, 0).size(), 10u);
}

TEST(Escalation, BelowThresholdUnchanged) {
  auto requests = TupleRcs("esc-r", 3);
  EXPECT_EQ(EscalateConditionLocks(requests, 3).size(), 3u);
}

TEST(Escalation, AboveThresholdCollapsesToRelationLock) {
  auto requests = TupleRcs("esc-r", 4);
  auto escalated = EscalateConditionLocks(requests, 3);
  ASSERT_EQ(escalated.size(), 1u);
  EXPECT_TRUE(escalated[0].object.is_relation_level());
  EXPECT_EQ(escalated[0].object.relation, Sym("esc-r"));
  EXPECT_EQ(escalated[0].mode, LockMode::kRc);
}

TEST(Escalation, PerRelationIndependence) {
  auto requests = TupleRcs("esc-a", 5);
  for (const auto& r : TupleRcs("esc-b", 2)) requests.push_back(r);
  auto escalated = EscalateConditionLocks(requests, 3);
  // esc-a collapses (5 > 3), esc-b's two tuple locks survive.
  size_t relation_level = 0, tuple_level = 0;
  for (const auto& request : escalated) {
    if (request.object.is_relation_level()) {
      EXPECT_EQ(request.object.relation, Sym("esc-a"));
      ++relation_level;
    } else {
      EXPECT_EQ(request.object.relation, Sym("esc-b"));
      ++tuple_level;
    }
  }
  EXPECT_EQ(relation_level, 1u);
  EXPECT_EQ(tuple_level, 2u);
}

TEST(Escalation, NonRcLocksAreNeverEscalated) {
  std::vector<LockRequest> requests;
  for (int i = 1; i <= 6; ++i) {
    requests.push_back(LockRequest{
        LockObjectId{Sym("esc-w"), static_cast<WmeId>(i)}, LockMode::kWa});
  }
  EXPECT_EQ(EscalateConditionLocks(requests, 2).size(), 6u);
}

TEST(Escalation, EngineRunStaysConsistentWithEscalation) {
  // A rule matching 4 tuples per firing, run with threshold 2 (so every
  // firing escalates), must still produce a serializable log.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation quad (slot int) (v int))
(relation out  (sum int))
(rule combine
  (quad ^slot 1 ^v <a>)
  (quad ^slot 2 ^v <b>)
  (quad ^slot 3 ^v <c>)
  (quad ^slot 4 ^v <d>)
  -(out)
  -->
  (make out ^sum (+ (+ <a> <b>) (+ <c> <d>))))
)",
                           &wm)
                   .ValueOrDie();
  for (int s = 1; s <= 4; ++s) {
    ASSERT_TRUE(wm.Insert("quad", {Value::Int(s), Value::Int(s * 10)}).ok());
  }
  auto pristine = wm.Clone();
  ParallelEngineOptions options;
  options.num_workers = 3;
  options.rc_escalation_threshold = 2;
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 1u);
  ASSERT_EQ(wm.Count(Sym("out")), 1u);
  EXPECT_EQ(wm.Scan(Sym("out"))[0]->value(0), Value::Int(100));
  EXPECT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
}

TEST(Escalation, EscalatedReaderIsVictimOfAnyWriteInRelation) {
  // With escalation, a firing that matched tuples {1,2,3,4} of `quad`
  // holds a relation-level Rc — so a writer of tuple 99 (untouched by the
  // match) still victimizes it. That is the documented conservatism.
  LockManager::Options lock_options;
  lock_options.protocol = LockProtocol::kRcRaWa;
  LockManager lm(lock_options);
  TxnId reader = lm.Begin(), writer = lm.Begin();
  auto escalated = EscalateConditionLocks(TupleRcs("esc-c", 4), 2);
  for (const auto& request : escalated) {
    ASSERT_TRUE(lm.Acquire(reader, request.object, request.mode).ok());
  }
  ASSERT_TRUE(
      lm.Acquire(writer, LockObjectId{Sym("esc-c"), 99}, LockMode::kWa)
          .ok());
  auto victims = lm.CollectRcVictims(writer);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], reader);
}

}  // namespace
}  // namespace dbps
