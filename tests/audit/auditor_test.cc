// ConsistencyAuditor unit tests: every violation class is provoked by a
// hand-written journal whose ONLY defect is the one under test, and each
// test asserts the auditor names the exact offending commit seq — a
// checker that fires at the wrong record is as useless as one that never
// fires.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "audit/audit_record.h"
#include "audit/auditor.h"
#include "audit/mutator.h"
#include "lang/wal.h"

namespace dbps {
namespace {

// A consistent six-commit history over two pre-declared ids:
//   seq 1  create id 1 (tag 1)
//   seq 2  create id 2 (tag 2)
//   seq 3  read (1 1), modify id 1 -> tag 3
//   seq 4  read (2 2) and (1 3), modify id 2 -> tag 4, victimizes one
//   seq 5  read (1 3), delete id 1
//   seq 6  snapshot reader at csn 4 reads (2 4), creates id 3 (tag 6)
const char kCleanLog[] = R"((delta (make account 1 100)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))
(delta (make account 2 200)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 0) (vt 0))
(delta (modify 1 (1 150))) ;a(audit (seq 3) (csn 3) (rc (1 1)) (wr (1 3)) (v 0) (vt 0))
(delta (modify 2 (1 250))) ;a(audit (seq 4) (csn 4) (rc (2 2) (1 3)) (wr (2 4)) (v 1) (vt 1))
(delta (delete 1)) ;a(audit (seq 5) (csn 5) (rc (1 3)) (wr) (v 0) (vt 1))
(delta (make receipt 9 350)) ;a(audit (seq 6) (csn 6) (sr 4 (2 4)) (wr (3 6)) (v 0) (vt 1))
)";

/// True iff some reported violation has class `cls` at seq `seq`.
bool Flagged(const AuditReport& report, AuditViolationClass cls,
             uint64_t seq) {
  for (const AuditViolation& v : report.violations) {
    if (v.cls == cls && v.seq == seq) return true;
  }
  return false;
}

TEST(AuditorTest, CleanLogIsConsistent) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(kCleanLog);
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.records, 6u);
  EXPECT_EQ(report.audited_records, 6u);
  EXPECT_EQ(report.reads_checked, 5u);
  EXPECT_EQ(report.writes_checked, 5u);
  EXPECT_GT(report.wr_edges, 0u);
  EXPECT_GT(report.ww_edges, 0u);
  EXPECT_GT(report.rw_edges, 0u);
}

TEST(AuditorTest, LogMayBeginMidHistory) {
  // A recovered suffix: the first record modifies an id the log never
  // created. Pre-log versions have unknown windows — consistent.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (modify 40 (1 7))) "
      ";a(audit (seq 9) (csn 12) (rc (40 3)) (wr (40 13)) (v 0) (vt 0))\n");
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(AuditorTest, MalformedLineIsFlagged) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (frobnicate))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kMalformedRecord, 2))
      << report.ToString();
}

TEST(AuditorTest, MalformedAuditCommentIsFlaggedNotIgnored) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (what))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kMalformedRecord, 0))
      << report.ToString();
}

TEST(AuditorTest, PlainCommentLeavesRecordUnaudited) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ; just a note\n");
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.records, 1u);
  EXPECT_EQ(report.audited_records, 0u);
}

TEST(AuditorTest, RequireAuditFlagsUnauditedRecords) {
  AuditOptions options;
  options.require_audit = true;
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 4) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2))\n",
      options);
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kMissingAudit, 5))
      << report.ToString();
}

TEST(AuditorTest, WriteEvidenceArityMismatchIsMalformed) {
  // Two create/modify ops but only one (wr) entry.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1) (make t 2)) "
      ";a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kMalformedRecord, 1))
      << report.ToString();
}

TEST(AuditorTest, SequenceGapIsFlaggedAtTheJump) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 3) (csn 2) (rc) (wr (2 2)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kSequenceGap, 3))
      << report.ToString();
}

TEST(AuditorTest, DuplicateSeqIsFlaggedAtTheRepeat) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 1) (csn 2) (rc) (wr (2 2)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kDuplicateSeq, 1))
      << report.ToString();
}

TEST(AuditorTest, CsnMustStrictlyIncrease) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 5) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 5) (rc) (wr (2 2)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kCsnChain, 2))
      << report.ToString();
}

TEST(AuditorTest, WriteToDeadIdIsAConflict) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (delete 1)) ;a(audit (seq 2) (csn 2) (rc (1 1)) (wr) (v 0) (vt 0))\n"
      "(delta (modify 1 (1 9))) ;a(audit (seq 3) (csn 3) (rc) (wr (1 3)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kWriteConflict, 3))
      << report.ToString();
}

TEST(AuditorTest, IdReuseIsAConflict) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (1 2)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kWriteConflict, 2))
      << report.ToString();
}

TEST(AuditorTest, StaleRcReadIsFlaggedAtTheReader) {
  // Seq 3 reads the tag-1 version of id 1 AFTER seq 2 superseded it —
  // the committed-read-of-clobbered-value §4.3 violation.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (modify 1 (1 5))) ;a(audit (seq 2) (csn 2) (rc (1 1)) (wr (1 2)) (v 0) (vt 0))\n"
      "(delta (make t 9)) ;a(audit (seq 3) (csn 3) (rc (1 1)) (wr (2 3)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kStaleRead, 3))
      << report.ToString();
}

TEST(AuditorTest, ReadBeforeCreateIsAFutureRead) {
  // Seq 1 reads id 7, which only comes to exist at seq 2: flagged at the
  // READER (seq 1), the record that observed impossible state.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc (7 2)) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (7 2)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kFutureRead, 1))
      << report.ToString();
}

TEST(AuditorTest, SnapshotReadFromTheFutureIsFlagged) {
  // The snapshot was pinned at csn 1 but reads the version created at
  // csn 2 — outside its visibility window.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 0) (vt 0))\n"
      "(delta (make t 3)) ;a(audit (seq 3) (csn 3) (sr 1 (2 2)) (wr (3 3)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kSnapshotRead, 3))
      << report.ToString();
}

TEST(AuditorTest, SnapshotReadOfPreSnapshotDeletedVersionIsFlagged) {
  // Id 1 died at csn 2; a snapshot pinned at csn 3 cannot see it.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (delete 1)) ;a(audit (seq 2) (csn 2) (rc (1 1)) (wr) (v 0) (vt 0))\n"
      "(delta (make t 3)) ;a(audit (seq 3) (csn 4) (sr 3 (1 1)) (wr (2 4)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kSnapshotRead, 3))
      << report.ToString();
}

TEST(AuditorTest, SnapshotReadOfNeverProducedVersionIsFlagged) {
  // Id 1's full history is in-log (created at seq 1, tag 1): tag 9 never
  // existed.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (sr 1 (1 9)) (wr (2 2)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kSnapshotRead, 2))
      << report.ToString();
}

TEST(AuditorTest, TimeTagsMustAdvanceInCommitOrder) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 5)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 4)) (v 0) (vt 0))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kTagOrder, 2))
      << report.ToString();
}

TEST(AuditorTest, VictimLedgerJumpIsFlagged) {
  // Seq 2 charges 0 victims but the ledger advances by 1: some
  // victimization went unlogged.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 0) (vt 1))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kVictimLedger, 2))
      << report.ToString();
}

TEST(AuditorTest, LedgerMayRestartAfterRecovery) {
  // A fresh engine over a recovered journal starts its ledger at its own
  // count: vt == v is the sanctioned restart.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 3) (vt 7))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 2) (vt 2))\n");
  EXPECT_TRUE(report.clean()) << report.ToString();
}

TEST(AuditorTest, StrictRestartsFlagsBareTextModeReset) {
  // The same sanctioned-restart log as above, but the caller asserts the
  // text journal came from ONE uninterrupted run: the bare vt == v reset
  // is now evidence of a truncated or forged ledger.
  AuditOptions options;
  options.strict_restarts = true;
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 3) (vt 7))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 2) (vt 2))\n",
      options);
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kVictimLedger, 2))
      << report.ToString();
}

TEST(AuditorTest, SampledEvidenceGapAllowsLedgerOvershoot) {
  // The middle record's audit clause was dropped by evidence sampling
  // (--audit-every): its victimizations accumulated invisibly, so the
  // next audited total may overshoot the chain — order-only tracking.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2))\n"
      "(delta (make t 3)) ;a(audit (seq 3) (csn 3) (rc) (wr (3 3)) (v 1) (vt 3))\n");
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.records, 3u);
  EXPECT_EQ(report.audited_records, 2u);
}

TEST(AuditorTest, LedgerOvershootWithoutAGapStaysFlagged) {
  // Same overshoot, no unaudited gap to hide behind: still a violation.
  const AuditReport report = ConsistencyAuditor::AuditJournalText(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 1) (vt 3))\n");
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kVictimLedger, 2))
      << report.ToString();
}

TEST(AuditorTest, WalModeBareResetWithoutCheckpointIsFlagged) {
  // A framed WAL proves restarts with checkpoint records; a vt == v reset
  // with no checkpoint anywhere before it is a forged restart.
  const std::string path = ::testing::TempDir() + "auditor_bare_reset.wal";
  std::ofstream(path, std::ios::binary) << EncodeTextAsWal(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 3) (vt 7))\n"
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 2) (vt 2))\n",
      /*start_seq=*/1);
  const AuditReport report =
      ConsistencyAuditor::AuditWalFile(path).ValueOrDie();
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kVictimLedger, 2))
      << report.ToString();
  std::remove(path.c_str());
}

TEST(AuditorTest, WalModeResetAfterCheckpointIsAccepted) {
  // The same reset, but a checkpoint record precedes it — the durable
  // restart evidence recovery leaves behind. Stitched cleanly.
  std::string wal = EncodeTextAsWal(
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 3) (vt 7))\n",
      /*start_seq=*/1);
  WalRecord checkpoint;
  checkpoint.seq = 2;  // fences commits 1..1: carries the next commit seq
  checkpoint.type = WalRecordType::kCheckpoint;
  checkpoint.payload = "(checkpoint)";
  EncodeWalRecord(checkpoint, &wal);
  wal += EncodeTextAsWal(
      "(delta (make t 2)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 2) (vt 2))\n",
      /*start_seq=*/2);
  const std::string path = ::testing::TempDir() + "auditor_ckpt_reset.wal";
  std::ofstream(path, std::ios::binary) << wal;
  const AuditReport report =
      ConsistencyAuditor::AuditWalFile(path).ValueOrDie();
  EXPECT_TRUE(report.clean()) << report.ToString();
  std::remove(path.c_str());
}

TEST(AuditorTest, AuditedLineRoundTripsThroughParse) {
  TxnAudit audit;
  audit.present = true;
  audit.csn = 57;
  audit.read_csn = 56;
  audit.reads = {{7, 30}, {9, 41}};
  audit.writes = {{7, 58}};
  audit.victims = 1;
  audit.victims_total = 9;
  Delta delta;
  delta.Modify(7, {{1, Value::Int(12)}});
  const std::string line =
      AuditedJournalLine(delta, 41, &audit).ValueOrDie();
  const AuditedRecord parsed = ParseAuditedLine(line).ValueOrDie();
  EXPECT_TRUE(parsed.has_seq);
  EXPECT_EQ(parsed.seq, 41u);
  EXPECT_TRUE(parsed.audit.present);
  EXPECT_EQ(parsed.audit.csn, 57u);
  EXPECT_EQ(parsed.audit.read_csn, 57u);  // locking reads: floor == csn
  EXPECT_FALSE(parsed.audit.snapshot_reads);
  EXPECT_EQ(parsed.audit.reads, audit.reads);
  EXPECT_EQ(parsed.audit.writes, audit.writes);
  EXPECT_EQ(parsed.audit.victims, 1u);
  EXPECT_EQ(parsed.audit.victims_total, 9u);

  // Snapshot reads round-trip the pinned CSN through the (sr R ...) form.
  audit.snapshot_reads = true;
  audit.read_csn = 12;
  const std::string sr_line =
      AuditedJournalLine(delta, 42, &audit).ValueOrDie();
  const AuditedRecord sr = ParseAuditedLine(sr_line).ValueOrDie();
  EXPECT_TRUE(sr.audit.snapshot_reads);
  EXPECT_EQ(sr.audit.read_csn, 12u);
}

TEST(AuditorTest, WalModeAuditsFramedLog) {
  const std::string path = ::testing::TempDir() + "auditor_clean.wal";
  std::ofstream(path, std::ios::binary)
      << EncodeTextAsWal(kCleanLog, /*start_seq=*/1);
  const AuditReport report =
      ConsistencyAuditor::AuditWalFile(path).ValueOrDie();
  EXPECT_TRUE(report.clean()) << report.ToString();
  EXPECT_EQ(report.records, 6u);
  std::remove(path.c_str());
}

TEST(AuditorTest, WalModeCrossChecksFrameSeqAgainstAuditClause) {
  // Frame seqs start at 5 but the audit clauses claim 1..6: every frame
  // contradicts its payload.
  const std::string path = ::testing::TempDir() + "auditor_skew.wal";
  std::ofstream(path, std::ios::binary)
      << EncodeTextAsWal(kCleanLog, /*start_seq=*/5);
  const AuditReport report =
      ConsistencyAuditor::AuditWalFile(path).ValueOrDie();
  EXPECT_TRUE(Flagged(report, AuditViolationClass::kMalformedRecord, 5))
      << report.ToString();
  std::remove(path.c_str());
}

TEST(AuditorTest, WalModeFlagsTornTail) {
  std::string wal = EncodeTextAsWal(kCleanLog, /*start_seq=*/1);
  wal.resize(wal.size() - 7);  // tear the last frame mid-payload
  const std::string path = ::testing::TempDir() + "auditor_torn.wal";
  std::ofstream(path, std::ios::binary) << wal;
  const AuditReport torn =
      ConsistencyAuditor::AuditWalFile(path).ValueOrDie();
  bool has_torn = false;
  for (const AuditViolation& v : torn.violations) {
    has_torn |= v.cls == AuditViolationClass::kTornLog;
  }
  EXPECT_TRUE(has_torn) << torn.ToString();

  AuditOptions lenient;
  lenient.flag_tail = false;
  const AuditReport ok =
      ConsistencyAuditor::AuditWalFile(path, lenient).ValueOrDie();
  EXPECT_TRUE(ok.clean()) << ok.ToString();
  std::remove(path.c_str());
}

TEST(AuditorTest, MissingWalFileIsAnEmptyCleanReport) {
  const AuditReport report =
      ConsistencyAuditor::AuditWalFile(::testing::TempDir() +
                                       "auditor_no_such_file.wal")
          .ValueOrDie();
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.records, 0u);
}

TEST(AuditorTest, ViolationCollectionIsCapped) {
  AuditOptions options;
  options.max_violations = 2;
  std::string log;
  for (int i = 1; i <= 6; ++i) {
    // Every record reuses id 1: five conflicts, but only two collected.
    log += "(delta (make t " + std::to_string(i) + ")) ;a(audit (seq " +
           std::to_string(i) + ") (csn " + std::to_string(i) +
           ") (rc) (wr (1 " + std::to_string(i) + ")) (v 0) (vt 0))\n";
  }
  const AuditReport report =
      ConsistencyAuditor::AuditJournalText(log, options);
  EXPECT_FALSE(report.clean());
  EXPECT_EQ(report.violations.size(), 2u);
}

}  // namespace
}  // namespace dbps
