// Mutation harness tests: prove the auditor has TEETH. Each test takes a
// known-good audited journal, applies one targeted corruption
// (audit/mutator.h), and asserts the auditor flags the mutated log at
// EXACTLY the seq the harness predicted — detection at the wrong record
// would make the auditor useless for localizing a real bug.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "audit/audit_record.h"
#include "audit/auditor.h"
#include "audit/mutator.h"
#include "engine/single_thread_engine.h"
#include "lang/compiler.h"

namespace dbps {
namespace {

// A consistent log offering a candidate site for EVERY mutation class:
// a WR-dependent adjacent pair (3 -> 4), a victimizing commit (4), an Rc
// read with a superseded older version (id 1 at 4), a snapshot reader
// with a concurrently committed later version to splice (5 commits after
// the reader's csn-4 snapshot), and of course records to duplicate.
const char kCleanLog[] = R"((delta (make account 1 100)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) (v 0) (vt 0))
(delta (make account 2 200)) ;a(audit (seq 2) (csn 2) (rc) (wr (2 2)) (v 0) (vt 0))
(delta (modify 1 (1 150))) ;a(audit (seq 3) (csn 3) (rc (1 1)) (wr (1 3)) (v 0) (vt 0))
(delta (modify 2 (1 250))) ;a(audit (seq 4) (csn 4) (rc (2 2) (1 3)) (wr (2 4)) (v 1) (vt 1))
(delta (make account 3 300)) ;a(audit (seq 5) (csn 5) (rc) (wr (3 5)) (v 0) (vt 1))
(delta (make receipt 9 350)) ;a(audit (seq 6) (csn 6) (sr 4 (2 4)) (wr (4 6)) (v 0) (vt 1))
)";

constexpr LogMutation kAllMutations[] = {
    LogMutation::kSwapConflictingCommits, LogMutation::kDropVictimisation,
    LogMutation::kSpliceStaleRead, LogMutation::kStaleSnapshotRead,
    LogMutation::kDuplicateSeq,
};

bool FlaggedAt(const AuditReport& report, uint64_t seq) {
  for (const AuditViolation& v : report.violations) {
    if (v.seq == seq) return true;
  }
  return false;
}

bool FlaggedAs(const AuditReport& report, AuditViolationClass cls,
               uint64_t seq) {
  for (const AuditViolation& v : report.violations) {
    if (v.cls == cls && v.seq == seq) return true;
  }
  return false;
}

TEST(MutationTest, BaselineLogIsClean) {
  const AuditReport report = ConsistencyAuditor::AuditJournalText(kCleanLog);
  ASSERT_TRUE(report.clean()) << report.ToString();
}

TEST(MutationTest, EveryMutationIsFlaggedAtThePredictedSeq) {
  for (LogMutation mutation : kAllMutations) {
    for (uint64_t seed = 0; seed < 5; ++seed) {
      const MutationResult result =
          MutateJournalText(kCleanLog, mutation, seed).ValueOrDie();
      ASSERT_NE(result.text, kCleanLog)
          << LogMutationToString(mutation) << " seed " << seed;
      const AuditReport report =
          ConsistencyAuditor::AuditJournalText(result.text);
      EXPECT_FALSE(report.clean())
          << LogMutationToString(mutation) << " seed " << seed
          << " went undetected:\n" << result.text;
      EXPECT_TRUE(FlaggedAt(report, result.expect_seq))
          << LogMutationToString(mutation) << " seed " << seed
          << " expected a violation at seq " << result.expect_seq << ":\n"
          << report.ToString();
    }
  }
}

TEST(MutationTest, SwapReportsAFutureReadAtTheEarlierSlot) {
  // Commits 3 and 4 have a WR edge (4 reads the (1 3) version 3 wrote);
  // after the swap the reader sits at slot 3 and observes its future.
  const MutationResult result =
      MutateJournalText(kCleanLog, LogMutation::kSwapConflictingCommits, 0)
          .ValueOrDie();
  EXPECT_EQ(result.expect_seq, 3u);
  const AuditReport report =
      ConsistencyAuditor::AuditJournalText(result.text);
  EXPECT_TRUE(FlaggedAs(report, AuditViolationClass::kFutureRead, 3))
      << report.ToString();
}

TEST(MutationTest, DroppedVictimisationBreaksTheLedger) {
  const MutationResult result =
      MutateJournalText(kCleanLog, LogMutation::kDropVictimisation, 0)
          .ValueOrDie();
  EXPECT_EQ(result.expect_seq, 4u);
  const AuditReport report =
      ConsistencyAuditor::AuditJournalText(result.text);
  EXPECT_TRUE(FlaggedAs(report, AuditViolationClass::kVictimLedger, 4))
      << report.ToString();
}

TEST(MutationTest, SplicedStaleReadIsAStaleRead) {
  const MutationResult result =
      MutateJournalText(kCleanLog, LogMutation::kSpliceStaleRead, 0)
          .ValueOrDie();
  EXPECT_EQ(result.expect_seq, 4u);
  const AuditReport report =
      ConsistencyAuditor::AuditJournalText(result.text);
  EXPECT_TRUE(FlaggedAs(report, AuditViolationClass::kStaleRead, 4))
      << report.ToString();
}

TEST(MutationTest, SplicedSnapshotReadBreaksTheVisibilityWindow) {
  const MutationResult result =
      MutateJournalText(kCleanLog, LogMutation::kStaleSnapshotRead, 0)
          .ValueOrDie();
  EXPECT_EQ(result.expect_seq, 6u);
  const AuditReport report =
      ConsistencyAuditor::AuditJournalText(result.text);
  EXPECT_TRUE(FlaggedAs(report, AuditViolationClass::kSnapshotRead, 6))
      << report.ToString();
}

TEST(MutationTest, DuplicatedRecordIsADuplicateSeq) {
  const MutationResult result =
      MutateJournalText(kCleanLog, LogMutation::kDuplicateSeq, 2)
          .ValueOrDie();
  const AuditReport report =
      ConsistencyAuditor::AuditJournalText(result.text);
  EXPECT_TRUE(FlaggedAs(report, AuditViolationClass::kDuplicateSeq,
                        result.expect_seq))
      << report.ToString();
}

TEST(MutationTest, MutationsWithoutACandidateSiteAreNotFound) {
  // A log with no victimizations offers kDropVictimisation nothing.
  const char kNoVictims[] =
      "(delta (make t 1)) ;a(audit (seq 1) (csn 1) (rc) (wr (1 1)) "
      "(v 0) (vt 0))\n";
  auto result =
      MutateJournalText(kNoVictims, LogMutation::kDropVictimisation, 0);
  EXPECT_TRUE(result.status().IsNotFound()) << result.status();
}

TEST(MutationTest, UnauditedJournalIsRejected) {
  auto result = MutateJournalText("(delta (make t 1))\n",
                                  LogMutation::kDuplicateSeq, 0);
  EXPECT_TRUE(result.status().IsInvalidArgument()) << result.status();
}

TEST(MutationTest, MutatedLogIsAlsoFlaggedInWalForm) {
  // The same corruption must be caught when the log arrives as a framed
  // WAL: splice a stale read (line count is preserved, so the dense
  // frame seqs still match the audit clauses).
  const MutationResult result =
      MutateJournalText(kCleanLog, LogMutation::kSpliceStaleRead, 0)
          .ValueOrDie();
  const std::string path = ::testing::TempDir() + "mutated.wal";
  std::ofstream(path, std::ios::binary)
      << EncodeTextAsWal(result.text, /*start_seq=*/1);
  const AuditReport report =
      ConsistencyAuditor::AuditWalFile(path).ValueOrDie();
  EXPECT_TRUE(FlaggedAs(report, AuditViolationClass::kStaleRead,
                        result.expect_seq))
      << report.ToString();
  std::remove(path.c_str());
}

/// Renders an engine's in-memory commit log as audited journal text —
/// the exact bytes JournalFeed would have written.
std::string RenderLog(const RunResult& result) {
  std::string text;
  for (const FiringRecord& record : result.log) {
    text +=
        AuditedJournalLine(record.delta, record.seq, &record.audit)
            .ValueOrDie();
    text += '\n';
  }
  return text;
}

TEST(MutationTest, EngineProducedLogSurvivesAndFailsMutation) {
  // A real engine log (each firing reads the version the previous firing
  // produced — a WR chain) audits clean; mutated, it does not.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule spin (t ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make t ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  EngineOptions options;
  options.max_firings = 10;
  SingleThreadEngine engine(&wm, rules, options);
  const RunResult result = engine.Run().ValueOrDie();
  ASSERT_EQ(result.log.size(), 10u);
  const std::string text = RenderLog(result);

  const AuditReport clean = ConsistencyAuditor::AuditJournalText(text);
  ASSERT_TRUE(clean.clean()) << clean.ToString();
  ASSERT_EQ(clean.audited_records, 10u);

  for (LogMutation mutation :
       {LogMutation::kSwapConflictingCommits, LogMutation::kSpliceStaleRead,
        LogMutation::kDuplicateSeq}) {
    for (uint64_t seed = 0; seed < 3; ++seed) {
      const MutationResult mutated =
          MutateJournalText(text, mutation, seed).ValueOrDie();
      const AuditReport report =
          ConsistencyAuditor::AuditJournalText(mutated.text);
      EXPECT_FALSE(report.clean())
          << LogMutationToString(mutation) << " seed " << seed
          << " went undetected on an engine log";
      EXPECT_TRUE(FlaggedAt(report, mutated.expect_seq))
          << LogMutationToString(mutation) << " seed " << seed << ":\n"
          << report.ToString();
    }
  }
}

}  // namespace
}  // namespace dbps
