// The robustness acceptance suite: >= 50 seeded chaos trials across
// {kTwoPhase, kRcRaWa} x {kAbort, kRevalidate} with fault injection
// armed — every trial must terminate, replay-validate its committed log
// (Definition 3.2 extended to client records), and leak no transactions —
// plus the starvation stress test: a hot relation-level Rc object under
// continuous writers, where blocking escalation guarantees every firing
// eventually commits with a bounded abort streak.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbps.h"
#include "testing/chaos_runner.h"

namespace dbps {
namespace {

using testing::ChaosOptions;
using testing::ChaosReport;
using testing::ChaosRunner;
using testing::ChaosWorkload;

constexpr uint64_t kTrialsPerCombo = 13;  // 4 combos x 13 = 52 trials

class ChaosTest
    : public ::testing::TestWithParam<std::pair<LockProtocol, AbortPolicy>> {
 protected:
  void TearDown() override { FailpointRegistry::Instance().DisableAll(); }
};

TEST_P(ChaosTest, SeededMultiUserTrialsStayConsistent) {
  auto [protocol, abort_policy] = GetParam();
  uint64_t total_committed = 0;
  // DBPS_CHAOS_TRIALS multiplies the trial count (soak runs scale it
  // 10-100x); DBPS_CHAOS_SEED offsets the seeds into fresh schedules.
  const uint64_t trials = kTrialsPerCombo * testing::ChaosTrialMultiplier();
  for (uint64_t trial = 1; trial <= trials; ++trial) {
    ChaosOptions options;
    options.workload = ChaosWorkload::kMultiUser;
    options.protocol = protocol;
    options.abort_policy = abort_policy;
    options.seed = testing::ChaosSeedBase() + trial;
    options.fail_rate = 0.05;
    ChaosReport report = ChaosRunner::RunTrial(options);
    ASSERT_TRUE(report.verdict.ok())
        << "seed " << options.seed << ": " << report.ToString();
    total_committed += report.committed_client_txns;
  }
  // Faults may exhaust individual retry budgets, but across a whole
  // combo's trials clients must be making real progress.
  EXPECT_GT(total_committed, 0u);
}

TEST_P(ChaosTest, RulesOnlyTrialWithHigherFaultRate) {
  auto [protocol, abort_policy] = GetParam();
  ChaosOptions options;
  options.workload = ChaosWorkload::kRulesOnly;
  options.protocol = protocol;
  options.abort_policy = abort_policy;
  options.seed = 97;
  options.fail_rate = 0.15;
  ChaosReport report = ChaosRunner::RunTrial(options);
  ASSERT_TRUE(report.verdict.ok()) << report.ToString();
  EXPECT_GT(report.stats.firings, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ChaosTest,
    ::testing::Values(
        std::make_pair(LockProtocol::kTwoPhase, AbortPolicy::kAbort),
        std::make_pair(LockProtocol::kTwoPhase, AbortPolicy::kRevalidate),
        std::make_pair(LockProtocol::kRcRaWa, AbortPolicy::kAbort),
        std::make_pair(LockProtocol::kRcRaWa, AbortPolicy::kRevalidate)),
    [](const auto& info) {
      std::string name = info.param.first == LockProtocol::kTwoPhase
                             ? "TwoPhase"
                             : "RcRaWa";
      name += info.param.second == AbortPolicy::kAbort ? "Abort"
                                                       : "Revalidate";
      return name;
    });

// --- Batched commit apply under faults -------------------------------------
//
// The chaos profile stalls engine.commit.batch_window (so multi-commit
// batches form) and crashes members at engine.commit.crash_in_batch
// (mid-batch, after batch-mates were gathered). Every trial must still
// replay-validate: a crashed member's work never reaches the log while
// its batch-mates commit — the partial-batch safety property.

TEST(ChaosBatchingTest, CrashMidBatchTrialsStayConsistent) {
  uint64_t total_committed = 0;
  for (uint64_t seed = 101; seed <= 106; ++seed) {
    ChaosOptions options;
    options.workload = ChaosWorkload::kMultiUser;
    options.protocol = LockProtocol::kRcRaWa;
    options.abort_policy = AbortPolicy::kAbort;
    options.seed = seed;
    options.fail_rate = 0.08;
    options.commit_batch_limit = 8;
    ChaosReport report = ChaosRunner::RunTrial(options);
    ASSERT_TRUE(report.verdict.ok())
        << "seed " << seed << ": " << report.ToString();
    total_committed += report.committed_client_txns;
  }
  EXPECT_GT(total_committed, 0u);
}

TEST(ChaosBatchingTest, BatchingDisabledControlTrialStaysConsistent) {
  ChaosOptions options;
  options.workload = ChaosWorkload::kMultiUser;
  options.seed = 131;
  options.fail_rate = 0.08;
  options.commit_batch_limit = 1;  // folding off; same fault schedule
  ChaosReport report = ChaosRunner::RunTrial(options);
  ASSERT_TRUE(report.verdict.ok()) << report.ToString();
  EXPECT_EQ(report.stats.batched_commits, 0u);
}

// --- Starvation stress -----------------------------------------------------
//
// The paper's known livelock (§4.3): under kRcRaWa + kAbort a firing
// holding an Rc lock is victimized by every conflicting commit, and a
// steady stream of writers can starve it forever. The `work` rule takes
// an escalated relation-level Rc on `hot` (negated CE) while clients
// continuously insert into `hot`; each insert's commit victimizes the
// firing. Blocking escalation (ParallelEngineOptions::escalate_after_
// aborts) must bound the streak and let every firing commit.

constexpr const char* kStarvationProgram = R"(
(relation job (id int) (state symbol))
(relation hot (n int))

(rule work :cost 400
  (job ^id <i> ^state todo)
  -(hot ^n 999999)
  -->
  (modify 1 ^state done))
)";

TEST(ChaosStarvationTest, EscalationBoundsAbortStreakOnHotRcObject) {
  constexpr size_t kClients = 3;
  constexpr uint64_t kWritesPerClient = 40;
  constexpr uint64_t kJobEvery = 10;  // every 10th write also files a job
  constexpr int kEscalateAfter = 2;

  WorkingMemory wm;
  auto rules = LoadProgram(kStarvationProgram, &wm).ValueOrDie();
  // One job exists before any client connects. The victimize failpoint
  // forces its first two firing attempts to abort — a deterministic §4.3
  // abort storm — so its third claim must escalate and commit; the
  // throttled writers below then pile real victimizations on top.
  DBPS_CHECK_OK(
      wm.Insert("job", {Value::Int(1), Value::Symbol("todo")}).status());
  auto pristine = wm.Clone();
  DBPS_CHECK_OK(FailpointRegistry::Instance().ConfigureFromString(
      "engine.firing.victimize=1in:1,max:2"));

  SessionManager manager(&wm);
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = LockProtocol::kRcRaWa;
  options.abort_policy = AbortPolicy::kAbort;  // victimize on every commit
  options.escalate_after_aborts = kEscalateAfter;
  options.external_source = &manager;
  ParallelEngine engine(&wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  // Hold the writers back until both forced victimizations have landed on
  // the pre-inserted job's instantiation (bounded wait, ~2 s worst case).
  for (int i = 0;
       i < 20000 && FailpointRegistry::Instance().total_fires() < 2; ++i) {
    SleepMicros(100);
  }
  ASSERT_EQ(FailpointRegistry::Instance().total_fires(), 2u);

  std::atomic<uint64_t> jobs_filed{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session_or = manager.Connect("writer-" + std::to_string(c));
      ASSERT_TRUE(session_or.ok()) << session_or.status();
      SessionPtr session = session_or.ValueOrDie();
      for (uint64_t i = 0; i < kWritesPerClient; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          Delta delta;
          delta.Create(Sym("hot"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i))});
          if (i % kJobEvery == 0) {
            delta.Create(Sym("job"),
                         {Value::Int(static_cast<int64_t>(c * 1000 + i)),
                          Value::Symbol("todo")});
          }
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        ASSERT_TRUE(st.ok()) << "writer " << c << " txn " << i << ": " << st;
        if (i % kJobEvery == 0) jobs_filed.fetch_add(1);
        // Throttle so the writers stay active across the firing window.
        SleepMicros(100);
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  FailpointRegistry::Instance().DisableAll();

  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult& result = result_or.ValueOrDie();

  // Liveness: every job (pre-inserted + filed) was worked exactly once —
  // no firing starved.
  EXPECT_EQ(result.stats.firings, jobs_filed.load() + 1);
  EXPECT_EQ(wm.Count(Sym("hot")), kClients * kWritesPerClient);

  // The abort storm happened (two forced victimizations at minimum)...
  EXPECT_GE(result.stats.aborts, 2u);
  // ...and escalation both triggered and bounded it: once a firing's
  // streak reaches the threshold its next attempt acquires blocking Rc,
  // which cannot be victimized, so no streak can exceed the threshold —
  // and the pre-inserted job's streak provably reached it.
  EXPECT_GE(result.stats.escalations, 1u);
  EXPECT_EQ(result.stats.max_abort_streak,
            static_cast<uint64_t>(kEscalateAfter));
  EXPECT_GT(result.stats.backoff_micros, 0u);

  // Safety held throughout.
  EXPECT_EQ(engine.live_lock_transactions(), 0u);
  Status replay = ValidateReplay(pristine.get(), rules, result.log);
  ASSERT_TRUE(replay.ok()) << replay;
  EXPECT_EQ(pristine->TotalCount(), wm.TotalCount());
}

// Without escalation the same workload must still terminate (the writers
// stop eventually) but shows materially longer streaks — the control run
// demonstrating the livelock that escalation fixes.
TEST(ChaosStarvationTest, WithoutEscalationStreaksGrowUnbounded) {
  constexpr size_t kClients = 3;
  constexpr uint64_t kWritesPerClient = 40;

  WorkingMemory wm;
  auto rules = LoadProgram(kStarvationProgram, &wm).ValueOrDie();
  DBPS_CHECK_OK(
      wm.Insert("job", {Value::Int(1), Value::Symbol("todo")}).status());

  SessionManager manager(&wm);
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.protocol = LockProtocol::kRcRaWa;
  options.abort_policy = AbortPolicy::kAbort;
  options.escalate_after_aborts = 0;  // escalation disabled
  // Keep retries cheap so the run is fast even with many victimizations.
  options.retry_backoff_base = std::chrono::microseconds(10);
  options.retry_backoff_max = std::chrono::microseconds(200);
  options.external_source = &manager;
  ParallelEngine engine(&wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session_or = manager.Connect("writer-" + std::to_string(c));
      ASSERT_TRUE(session_or.ok()) << session_or.status();
      SessionPtr session = session_or.ValueOrDie();
      for (uint64_t i = 0; i < kWritesPerClient; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          Delta delta;
          delta.Create(Sym("hot"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i))});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        ASSERT_TRUE(st.ok()) << st;
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();

  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult& result = result_or.ValueOrDie();
  // The single job still completes once the writers stop.
  EXPECT_EQ(result.stats.firings, 1u);
  EXPECT_EQ(result.stats.escalations, 0u);
}

}  // namespace
}  // namespace dbps
