// Kill-and-recover chaos: 32 seeded trials crash the durable journal at
// a seed-chosen failpoint (all frames written, or torn mid-frame) under
// per-commit and group-commit fsync modes, with and without automatic
// checkpoints, then recover the WAL and prove no acked commit was lost,
// the truncated tail was exactly the un-acked suffix, and checkpoint
// recovery equals a full replay. The crash site and its firing point
// both derive from the seed, so a failing trial reproduces from its
// printed options alone.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "testing/chaos_runner.h"

namespace dbps {
namespace testing {
namespace {

TEST(CrashRecoveryChaosTest, NoAckedCommitLostAcrossSeededMatrix) {
  uint64_t trials = 0;
  uint64_t crashes = 0;
  uint64_t acked = 0;
  uint64_t checkpointed_recoveries = 0;
  // DBPS_CHAOS_TRIALS scales the seed range; DBPS_CHAOS_SEED shifts it.
  const uint64_t seeds = 8 * ChaosTrialMultiplier();
  for (uint64_t seed = 1; seed <= seeds; ++seed) {
    for (int grouped = 0; grouped < 2; ++grouped) {
      for (size_t checkpoint_every : {size_t{0}, size_t{3}}) {
        ChaosOptions options;
        options.workload = ChaosWorkload::kCrashRecover;
        options.seed = (ChaosSeedBase() + seed) * 977 + grouped;
        options.group_commit = grouped != 0;
        options.checkpoint_every = checkpoint_every;
        options.client_sessions = 3;
        options.txns_per_session = 6;
        options.journal_path =
            ::testing::TempDir() + "crash_recover_" + std::to_string(seed) +
            "_" + std::to_string(grouped) + "_" +
            std::to_string(checkpoint_every) + ".wal";
        const ChaosReport report = ChaosRunner::RunTrial(options);
        EXPECT_TRUE(report.verdict.ok())
            << "seed=" << options.seed << " grouped=" << grouped
            << " checkpoint_every=" << checkpoint_every << " => "
            << report.ToString();
        ++trials;
        crashes += report.injected_crashes;
        acked += report.acked_commits;
        if (report.recovery.used_checkpoint) ++checkpointed_recoveries;
        std::remove(options.journal_path.c_str());
      }
    }
  }
  EXPECT_EQ(trials, 32u * ChaosTrialMultiplier());
  // The matrix must actually exercise the crash machinery, not just run
  // 32 healthy workloads: most trials crash mid-run, clients still got
  // real acks, and the checkpointed half recovers through checkpoints.
  EXPECT_GE(crashes, trials / 2);
  EXPECT_GT(acked, 0u);
  EXPECT_GT(checkpointed_recoveries, 0u);
}

TEST(CrashRecoveryChaosTest, RequiresAJournalPath) {
  ChaosOptions options;
  options.workload = ChaosWorkload::kCrashRecover;
  const ChaosReport report = ChaosRunner::RunTrial(options);
  EXPECT_TRUE(report.verdict.IsInvalidArgument()) << report.ToString();
}

}  // namespace
}  // namespace testing
}  // namespace dbps
