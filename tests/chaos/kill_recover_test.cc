// Real kill -9 recovery: fork a child process that runs an engine with
// a file-backed durable journal and reports every ACKED commit up a
// pipe; the parent SIGKILLs it at a seed-varied moment mid-workload,
// recovers the journal it left behind, and proves every commit the
// child acked before dying is present in the recovered database. This
// is the no-simulation version of the crash chaos suite: the tear in
// the log is wherever the kernel happened to stop the dead process's
// writes.

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "dbps.h"

namespace dbps {
namespace {

constexpr const char* kPlainProgram = R"(
(relation item (id int))
)";

/// Child body: commit items forever, writing "<id> <seq>\n" to `ack_fd`
/// AFTER each commit is fsync-acknowledged. Never returns.
[[noreturn]] void RunChildServer(const std::string& path, bool group_commit,
                                 int ack_fd) {
  WorkingMemory wm;
  auto rules_or = LoadProgram(kPlainProgram, &wm);
  if (!rules_or.ok()) _exit(3);
  JournalFeed feed;
  DurabilityOptions durability;
  durability.path = path;
  durability.open_mode = JournalOpenMode::kTruncate;
  durability.group_commit = group_commit;
  if (!feed.EnableDurability(durability).ok()) _exit(3);
  if (!feed.EnableCheckpoints(&wm).ok()) _exit(3);
  ServerOptions server_options;
  server_options.durable_feed = &feed;
  SessionManager manager(&wm, server_options);
  ParallelEngineOptions engine_options;
  engine_options.num_workers = 2;
  engine_options.external_source = &manager;
  engine_options.base.observer = feed.MakeObserver();
  ParallelEngine engine(&wm, rules_or.ValueOrDie(), engine_options);
  manager.BindEngine(&engine);
  std::thread serve([&] { (void)engine.Run(); });

  auto session_or = manager.Connect("victim");
  if (!session_or.ok()) _exit(3);
  SessionPtr session = session_or.ValueOrDie();
  for (int64_t id = 0;; ++id) {
    if (!session->Begin().ok()) _exit(3);
    Delta delta;
    delta.Create(Sym("item"), {Value::Int(id)});
    if (!session->Write(delta).ok()) _exit(3);
    auto seq_or = session->Commit();
    if (!seq_or.ok()) _exit(3);  // durable journal must not fail on its own
    // The ack is durable NOW; a single short write is atomic on a pipe,
    // so the parent sees whole lines or nothing. If the pipe fills, the
    // blocked write throttles the child until the kill lands.
    char line[64];
    const int n = std::snprintf(line, sizeof(line), "%lld %llu\n",
                                (long long)id,
                                (unsigned long long)seq_or.ValueOrDie());
    if (::write(ack_fd, line, static_cast<size_t>(n)) != n) _exit(0);
  }
}

struct KillTrialResult {
  std::vector<std::pair<int64_t, uint64_t>> acked;
  RecoveryStats recovery;
  size_t recovered_items = 0;
};

void RunKillTrial(uint64_t seed, bool group_commit, KillTrialResult* out) {
  const std::string path = ::testing::TempDir() + "kill_recover_" +
                           std::to_string(seed) + ".wal";
  std::remove(path.c_str());
  int pipe_fds[2];
  ASSERT_EQ(::pipe(pipe_fds), 0);
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    ::close(pipe_fds[0]);
    RunChildServer(path, group_commit, pipe_fds[1]);
  }
  ::close(pipe_fds[1]);

  // Let the child commit for a seed-varied slice of real time, then
  // kill it dead — no shutdown path runs, no buffer is flushed.
  std::this_thread::sleep_for(std::chrono::milliseconds(40 + (seed % 5) * 25));
  ASSERT_EQ(::kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus)) << "child exited on its own ("
                                    << wstatus << "): trial is vacuous";

  // Drain the ack pipe; a final partial line (the kill landed mid-write)
  // is discarded, which only under-counts acks — the safe direction.
  std::string acks;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(pipe_fds[0], buf, sizeof(buf))) > 0) {
    acks.append(buf, static_cast<size_t>(n));
  }
  ::close(pipe_fds[0]);
  std::istringstream lines(acks);
  int64_t id;
  uint64_t seq;
  while (lines >> id >> seq) out->acked.emplace_back(id, seq);

  // Recover what the dead process left on disk.
  WorkingMemory recovered;
  auto rules_or = LoadProgram(kPlainProgram, &recovered);
  ASSERT_TRUE(rules_or.ok());
  RecoveryManager recovery(path);
  auto stats_or = recovery.Recover(&recovered);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  out->recovery = stats_or.ValueOrDie();
  out->recovered_items = recovered.Count(Sym("item"));

  // Every acked commit survived the kill.
  for (const auto& entry : out->acked) {
    EXPECT_LT(entry.second, out->recovery.next_seq)
        << "acked id " << entry.first << " lost";
    EXPECT_EQ(recovered.Lookup(Sym("item"), 0, Value::Int(entry.first)).size(),
              1u)
        << "acked id " << entry.first << " missing after recovery";
  }
  // And the truncated journal scans clean — it could serve a restart.
  auto validate_or = recovery.Validate();
  ASSERT_TRUE(validate_or.ok());
  EXPECT_EQ(validate_or.ValueOrDie().tail, WalTail::kClean);
  EXPECT_EQ(validate_or.ValueOrDie().bytes_truncated, 0u);
  std::remove(path.c_str());
}

TEST(KillRecoverTest, SigkilledServerLosesNoAckedCommit) {
  uint64_t total_acked = 0;
  uint64_t total_recovered = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    KillTrialResult result;
    RunKillTrial(seed, /*group_commit=*/seed % 2 == 0, &result);
    if (HasFatalFailure()) return;
    total_acked += result.acked.size();
    total_recovered += result.recovered_items;
  }
  // The trials must not be vacuous: real commits were acked before the
  // kills, and recovery rebuilt real state.
  EXPECT_GT(total_acked, 0u);
  EXPECT_GE(total_recovered, total_acked);
}

}  // namespace
}  // namespace dbps
