// Network chaos: seeded fault-injection trials driven through the socket
// front-end — dropped connections mid-commit, injected read errors,
// forced partial writes, delayed group-commit fsyncs — each trial
// replay-validated (Definition 3.2 with external client records).

#include <gtest/gtest.h>

#include <cstdlib>

#include "testing/chaos_runner.h"

namespace dbps {
namespace {

using testing::ChaosOptions;
using testing::ChaosReport;
using testing::ChaosRunner;
using testing::ChaosWorkload;

TEST(NetChaosTest, SeededNetworkTrialsReplayValidate) {
  // 16 seeded trials (more with DBPS_CHAOS_TRIALS); every one must
  // replay-validate regardless of which faults its seed drew.
  int trials = 16;
  if (const char* env = std::getenv("DBPS_CHAOS_TRIALS")) {
    trials = std::max(1, std::atoi(env));
  }
  uint64_t total_committed = 0;
  uint64_t total_reconnects = 0;
  for (int i = 0; i < trials; ++i) {
    ChaosOptions options;
    options.workload = ChaosWorkload::kNetwork;
    options.seed = 9000 + static_cast<uint64_t>(i);
    options.fail_rate = 0.04;
    options.client_sessions = 4;
    options.txns_per_session = 6;
    ChaosReport report = ChaosRunner::RunTrial(options);
    ASSERT_TRUE(report.verdict.ok())
        << "seed " << options.seed << ": " << report.ToString();
    total_committed += report.committed_client_txns;
    total_reconnects += report.reconnects;
  }
  // The suite as a whole must have made real progress under faults.
  EXPECT_GT(total_committed, 0u);
  // And the faults must have actually bitten (injected connection churn);
  // a fleet of 16 trials with zero reconnects means the profile is dead.
  EXPECT_GT(total_reconnects, 0u);
}

TEST(NetChaosTest, HigherFaultRateTrialStillValidates) {
  ChaosOptions options;
  options.workload = ChaosWorkload::kNetwork;
  options.seed = 4242;
  options.fail_rate = 0.15;
  options.client_sessions = 3;
  options.txns_per_session = 5;
  ChaosReport report = ChaosRunner::RunTrial(options);
  ASSERT_TRUE(report.verdict.ok()) << report.ToString();
}

}  // namespace
}  // namespace dbps
