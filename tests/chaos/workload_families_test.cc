// Adversarial workload families: hot-key Zipfian skew, long-running
// snapshot readers, and mixed rule-firing + OLTP traffic, all under the
// seeded failpoint chaos profile. Every trial must replay-validate AND
// pass the offline consistency audit; failures print the effective seed
// so they reproduce standalone. DBPS_CHAOS_TRIALS scales the trial
// counts 10-100x for soak runs, DBPS_CHAOS_SEED shifts the seed space.

#include <gtest/gtest.h>

#include <cstdint>

#include "testing/chaos_runner.h"

namespace dbps {
namespace testing {
namespace {

TEST(WorkloadFamiliesTest, ZipfianHotKeySkewStaysConsistent) {
  const uint64_t trials = 3 * ChaosTrialMultiplier();
  uint64_t committed = 0;
  uint64_t audited = 0;
  for (uint64_t trial = 1; trial <= trials; ++trial) {
    ChaosOptions options;
    options.workload = ChaosWorkload::kZipfian;
    options.seed = ChaosSeedBase() + trial * 101;
    options.client_sessions = 4;
    options.txns_per_session = 10;
    options.zipfian_keys = 8;  // small key space: maximum contention
    const ChaosReport report = ChaosRunner::RunTrial(options);
    ASSERT_TRUE(report.verdict.ok())
        << "seed " << options.seed << " => " << report.ToString();
    // Every commit the engine produced must carry audit evidence.
    EXPECT_EQ(report.audit.audited_records, report.audit.records)
        << report.ToString();
    committed += report.committed_client_txns;
    audited += report.audit.audited_records;
  }
  // The family only means something if transactions actually landed and
  // the auditor actually saw them.
  EXPECT_GT(committed, 0u);
  EXPECT_GT(audited, 0u);
}

TEST(WorkloadFamiliesTest, ZipfianSurvivesFlatterSkewToo) {
  // theta 0.5 spreads the heat: different retry/victimization dynamics
  // over the same conservation + audit oracles.
  ChaosOptions options;
  options.workload = ChaosWorkload::kZipfian;
  options.seed = ChaosSeedBase() + 7;
  options.client_sessions = 3;
  options.txns_per_session = 8;
  options.zipfian_keys = 32;
  options.zipfian_theta = 0.5;
  const ChaosReport report = ChaosRunner::RunTrial(options);
  ASSERT_TRUE(report.verdict.ok())
      << "seed " << options.seed << " => " << report.ToString();
}

TEST(WorkloadFamiliesTest, LongSnapshotReadersSpanCommitBatches) {
  const uint64_t trials = 2 * ChaosTrialMultiplier();
  uint64_t committed = 0;
  for (uint64_t trial = 1; trial <= trials; ++trial) {
    ChaosOptions options;
    options.workload = ChaosWorkload::kSnapshotScan;
    options.seed = ChaosSeedBase() + trial * 211;
    options.client_sessions = 3;
    options.txns_per_session = 10;
    options.zipfian_keys = 8;
    options.snapshot_readers = 2;
    options.snapshot_rereads = 6;
    const ChaosReport report = ChaosRunner::RunTrial(options);
    ASSERT_TRUE(report.verdict.ok())
        << "seed " << options.seed << " => " << report.ToString();
    EXPECT_EQ(report.audit.audited_records, report.audit.records)
        << report.ToString();
    committed += report.committed_client_txns;
  }
  EXPECT_GT(committed, 0u);
}

TEST(WorkloadFamiliesTest, MixedRuleFiringAndOltpShareOneCommitOrder) {
  const uint64_t trials = 2 * ChaosTrialMultiplier();
  uint64_t firings = 0;
  uint64_t committed = 0;
  for (uint64_t trial = 1; trial <= trials; ++trial) {
    ChaosOptions options;
    options.workload = ChaosWorkload::kMixedOltp;
    options.seed = ChaosSeedBase() + trial * 307;
    options.client_sessions = 3;
    options.txns_per_session = 9;
    const ChaosReport report = ChaosRunner::RunTrial(options);
    ASSERT_TRUE(report.verdict.ok())
        << "seed " << options.seed << " => " << report.ToString();
    EXPECT_EQ(report.audit.audited_records, report.audit.records)
        << report.ToString();
    firings += report.stats.firings;
    committed += report.committed_client_txns;
  }
  // Both populations must be present in the audited history, or the
  // "mixed" family degenerated into one of the plain ones.
  EXPECT_GT(firings, 0u);
  EXPECT_GT(committed, 0u);
}

}  // namespace
}  // namespace testing
}  // namespace dbps
