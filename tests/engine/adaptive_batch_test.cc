// Unit tests for the pure adaptive-batch-limit controller: the raise and
// lower thresholds, hysteresis band, bounds clamping, and empty windows.

#include <gtest/gtest.h>

#include "engine/adaptive_batch.h"

namespace dbps {
namespace {

AdaptiveBatchSignals Window(uint64_t saturated, uint64_t total,
                            uint64_t stall_us) {
  AdaptiveBatchSignals w;
  w.saturated_batches = saturated;
  w.total_batches = total;
  w.stall_micros = stall_us;
  return w;
}

TEST(AdaptiveBatchTest, RaisesWhenSaturatedAndStalling) {
  // 32/64 saturated, 40us average stall: both raise conditions hold.
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(32, 64, 64 * 40), 8, 1, 64),
            16u);
}

TEST(AdaptiveBatchTest, LowersWhenIdle) {
  // 1/64 saturated, ~1us average stall: folding headroom is unused.
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(1, 64, 64), 8, 1, 64), 4u);
}

TEST(AdaptiveBatchTest, HoldsInTheHysteresisBand) {
  // Saturated enough not to lower, not stalling enough to raise.
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(10, 64, 64), 8, 1, 64), 8u);
  // Stalling but batches almost never fill: the limit is not the cause.
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(1, 64, 64 * 100), 8, 1, 64),
            8u);
}

TEST(AdaptiveBatchTest, EmptyWindowIsANoOp) {
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(0, 0, 0), 8, 1, 64), 8u);
}

TEST(AdaptiveBatchTest, ClampsToCeilingAndFloor) {
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(64, 64, 64 * 1000), 64, 1, 64),
            64u);
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(64, 64, 64 * 1000), 48, 1, 64),
            64u);
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(0, 64, 0), 1, 1, 64), 1u);
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(0, 64, 0), 8, 4, 64), 4u);
}

TEST(AdaptiveBatchTest, OutOfRangeCurrentIsClampedFirst) {
  // A current limit outside [floor, ceiling] (e.g. after a config
  // change) snaps into range before the window is considered.
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(10, 64, 64), 128, 1, 64), 64u);
  EXPECT_EQ(ComputeAdaptiveBatchLimit(Window(10, 64, 64), 0, 2, 64), 2u);
}

TEST(AdaptiveBatchTest, RepeatedPressureWalksToTheCeiling) {
  size_t limit = 1;
  for (int i = 0; i < 10; ++i) {
    limit = ComputeAdaptiveBatchLimit(Window(60, 64, 64 * 50), limit, 1, 64);
  }
  EXPECT_EQ(limit, 64u);
}

}  // namespace
}  // namespace dbps
