// The commit sequencer's group apply (DESIGN.md §4.1): adjacent tickets
// with disjoint write sets fold into one ordered batch, and the result
// must be indistinguishable from committing one ticket at a time — same
// log, same observer stream, same final database. Plus the failure half
// of the contract: a member that crashes mid-batch aborts cleanly while
// its batch-mates commit, and nothing of the partial work reaches the
// log.

#include <algorithm>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbps.h"

namespace dbps {
namespace {

constexpr size_t kClients = 4;
constexpr uint64_t kTxnsPerClient = 8;
constexpr int kMaxAttempts = 128;

// Clients insert disjoint tuples (distinct ids, no shared state), so
// their commit write sets never overlap and every adjacent pair of
// client tickets is foldable; the serve rule adds rule firings to the
// mix, whose write sets (the removed inbox tuple) are disjoint too.
constexpr const char* kProgram = R"(
(relation inbox (id int))
(relation done (id int))

(rule serve :cost 200
  (inbox ^id <i>)
  -->
  (remove 1)
  (make done ^id <i>))
)";

/// Canonical database dump: per-relation sorted tuple listing, so two
/// working memories with identical contents render identical bytes
/// regardless of internal container ordering.
std::string CanonicalDump(const WorkingMemory& wm) {
  std::string canonical;
  std::string raw = wm.ToString();
  std::vector<std::string> lines;
  size_t start = 0;
  while (start < raw.size()) {
    size_t end = raw.find('\n', start);
    if (end == std::string::npos) end = raw.size();
    lines.push_back(raw.substr(start, end - start));
    start = end + 1;
  }
  std::sort(lines.begin(), lines.end());
  for (const std::string& line : lines) canonical += line + "\n";
  return canonical;
}

struct BatchedRun {
  RunResult result;
  std::string final_dump;        // engine WM after the run (canonical)
  std::string replayed_dump;     // log deltas applied one at a time
  std::string observer_journal;  // kCommit stream, rendered per commit
  std::string log_journal;       // result.log, rendered the same way
  uint64_t writes_committed = 0;
  size_t live_lock_txns = 0;
  bool replay_valid = false;
};

BatchedRun RunBatchedWorkload(size_t commit_batch_limit) {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  auto pristine = wm.Clone();
  auto replay_wm = wm.Clone();

  std::mutex journal_mu;
  std::string observer_journal;

  SessionManager manager(&wm);
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = LockProtocol::kRcRaWa;
  options.commit_batch_limit = commit_batch_limit;
  options.external_source = &manager;
  options.base.observer = [&](const EngineEvent& event) {
    if (event.kind != EngineEvent::Kind::kCommit) return;
    // kCommit events arrive in commit order even when the head of the
    // sequencer applies a whole batch — this journal must come out
    // byte-identical to the log.
    std::lock_guard<std::mutex> lock(journal_mu);
    observer_journal += event.key->rule_name + "|" +
                        (event.delta != nullptr ? event.delta->ToString()
                                                : std::string()) +
                        "\n";
  };
  ParallelEngine engine(&wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result{Status::Internal("not run")};
  std::thread serve([&] { result = engine.Run(); });

  std::atomic<uint64_t> writes{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session =
          manager.Connect("batch-" + std::to_string(c)).ValueOrDie();
      for (uint64_t i = 0; i < kTxnsPerClient; ++i) {
        for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
          if (!session->Begin().ok()) break;
          Delta delta;
          delta.Create(Sym("inbox"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i))});
          if (!session->Write(delta).ok()) continue;
          if (session->Commit().ok()) {
            writes.fetch_add(1);
            break;
          }
        }
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  FailpointRegistry::Instance().DisableAll();

  BatchedRun run;
  DBPS_CHECK(result.ok()) << result.status();
  run.result = std::move(result).ValueOrDie();
  run.writes_committed = writes.load();
  run.live_lock_txns = engine.live_lock_transactions();
  run.final_dump = CanonicalDump(wm);

  // The unbatched semantics: apply the log's deltas strictly one commit
  // at a time, in seq order, onto the pristine initial state.
  for (const FiringRecord& record : run.result.log) {
    DBPS_CHECK_OK(replay_wm->Apply(record.delta).status());
    run.log_journal += record.key.rule_name + "|" +
                       record.delta.ToString() + "\n";
  }
  run.replayed_dump = CanonicalDump(*replay_wm);
  run.observer_journal = observer_journal;
  run.replay_valid =
      ValidateReplay(pristine.get(), rules, run.result.log).ok();
  return run;
}

class CommitBatchingTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisableAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisableAll(); }
};

TEST_F(CommitBatchingTest, BatchedJournalIsByteIdenticalToUnbatchedApply) {
  // Stall each committer briefly after it takes its ticket so followers
  // pile up behind the head and batches actually form (the site is
  // documented sleep-safe: it runs before the sequencer is entered).
  FailpointSpec window;
  window.probability = 1.0;
  window.max_fires = 48;
  window.delay = std::chrono::microseconds(1500);
  FailpointRegistry::Instance().Configure("engine.commit.batch_window",
                                          window);

  BatchedRun run = RunBatchedWorkload(/*commit_batch_limit=*/8);
  EXPECT_EQ(run.writes_committed, kClients * kTxnsPerClient);
  EXPECT_EQ(run.live_lock_txns, 0u);
  ASSERT_GT(run.result.stats.commit_batches, 0u);
  EXPECT_GT(run.result.stats.batched_commits, 0u)
      << "the widened commit window never produced a multi-commit batch";

  // One ordered pass over a batch must be indistinguishable from
  // committing its members one at a time: the observer stream equals the
  // log, and replaying the log one delta at a time reproduces the final
  // database byte for byte.
  EXPECT_EQ(run.observer_journal, run.log_journal);
  EXPECT_EQ(run.final_dump, run.replayed_dump);
  EXPECT_TRUE(run.replay_valid);
}

TEST_F(CommitBatchingTest, BatchLimitOneDisablesFolding) {
  BatchedRun run = RunBatchedWorkload(/*commit_batch_limit=*/1);
  EXPECT_EQ(run.writes_committed, kClients * kTxnsPerClient);
  EXPECT_EQ(run.result.stats.batched_commits, 0u);
  for (size_t size = 2; size < run.result.stats.batch_size_histogram.size();
       ++size) {
    EXPECT_EQ(run.result.stats.batch_size_histogram[size], 0u)
        << "batch of " << size << " formed with folding disabled";
  }
  EXPECT_EQ(run.observer_journal, run.log_journal);
  EXPECT_EQ(run.final_dump, run.replayed_dump);
  EXPECT_TRUE(run.replay_valid);
}

TEST_F(CommitBatchingTest, CrashMidBatchNeverLeaksPartialWorkIntoTheLog) {
  // Widen the window AND crash some members mid-batch: the crashed
  // member aborts and retries while its batch-mates commit. If any
  // partial work leaked into the log or the database, the byte-identity
  // and replay checks below would fail.
  FailpointSpec window;
  window.probability = 1.0;
  window.max_fires = 48;
  window.delay = std::chrono::microseconds(1500);
  FailpointRegistry::Instance().Configure("engine.commit.batch_window",
                                          window);
  FailpointSpec crash;
  crash.one_in = 5;
  crash.max_fires = 6;
  FailpointRegistry::Instance().Configure("engine.commit.crash_in_batch",
                                          crash);

  BatchedRun run = RunBatchedWorkload(/*commit_batch_limit=*/8);
  // Every crashed commit was retried to completion.
  EXPECT_EQ(run.writes_committed, kClients * kTxnsPerClient);
  EXPECT_EQ(run.live_lock_txns, 0u);
  EXPECT_GT(run.result.stats.injected_faults, 0u);
  EXPECT_EQ(run.observer_journal, run.log_journal);
  EXPECT_EQ(run.final_dump, run.replayed_dump);
  EXPECT_TRUE(run.replay_valid);
}

}  // namespace
}  // namespace dbps
