// THE theorem-level property test: for random programs and every engine
// configuration, the committed firing log must replay as a valid
// single-thread execution sequence (Definition 3.2 / Theorems 1, 2 and
// the §4.3 scheme). This is the empirical heart of the reproduction.

#include <gtest/gtest.h>

#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "engine/static_partition_engine.h"
#include "lang/compiler.h"
#include "semantics/replay_validator.h"
#include "testing/workloads.h"

namespace dbps {
namespace {

struct ConsistencyCase {
  uint64_t seed;
  // 0=2PL, 1=RcRaWa/abort, 2=RcRaWa/revalidate, 3=static,
  // 4=RcRaWa with the TREAT matcher
  int config;
};

class ConsistencyProperty
    : public ::testing::TestWithParam<ConsistencyCase> {};

TEST_P(ConsistencyProperty, ParallelLogReplaysAsSerialSequence) {
  const auto [seed, config] = GetParam();
  testing::RandomProgramBuilder builder(seed);
  std::string source = builder.Build();

  WorkingMemory wm;
  auto rules_or = LoadProgram(source, &wm);
  ASSERT_TRUE(rules_or.ok()) << rules_or.status() << "\n" << source;
  RuleSetPtr rules = rules_or.ValueOrDie();
  auto pristine = wm.Clone();

  RunResult result;
  if (config == 3) {
    StaticPartitionOptions options;
    options.num_workers = 4;
    options.base.seed = seed;
    options.base.max_firings = 5000;
    StaticPartitionEngine engine(&wm, rules, options);
    result = engine.Run().ValueOrDie();
  } else {
    ParallelEngineOptions options;
    options.num_workers = 4;
    options.base.seed = seed;
    options.base.max_firings = 5000;
    options.protocol = config == 0 ? LockProtocol::kTwoPhase
                                   : LockProtocol::kRcRaWa;
    options.abort_policy = config == 2 ? AbortPolicy::kRevalidate
                                       : AbortPolicy::kAbort;
    if (config == 4) options.base.matcher = MatcherKind::kTreat;
    ParallelEngine engine(&wm, rules, options);
    result = engine.Run().ValueOrDie();
  }

  EXPECT_FALSE(result.stats.hit_max_firings)
      << "random program did not quiesce\n"
      << source;

  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  ASSERT_TRUE(valid.ok()) << valid << "\nseed " << seed << " config "
                          << config << "\nprogram:\n"
                          << source;
}

std::vector<ConsistencyCase> AllCases() {
  std::vector<ConsistencyCase> cases;
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    for (int config = 0; config < 5; ++config) {
      cases.push_back(ConsistencyCase{seed, config});
    }
  }
  return cases;
}

std::string CaseName(const ::testing::TestParamInfo<ConsistencyCase>& info) {
  static const char* kNames[] = {"TwoPhase", "RcAbort", "RcRevalidate",
                                 "Static", "RcTreat"};
  return "Seed" + std::to_string(info.param.seed) +
         kNames[info.param.config];
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, ConsistencyProperty,
                         ::testing::ValuesIn(AllCases()), CaseName);

// Determinism guard: the single-thread engine itself is deterministic —
// same seed, same program, same sequence.
TEST(ConsistencyProperty, SingleThreadIsDeterministic) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    testing::RandomProgramBuilder builder(seed);
    std::string source = builder.Build();
    auto run = [&source](uint64_t engine_seed) {
      WorkingMemory wm;
      auto rules = LoadProgram(source, &wm).ValueOrDie();
      EngineOptions options;
      options.strategy = ConflictResolution::kRandom;
      options.seed = engine_seed;
      SingleThreadEngine engine(&wm, rules, options);
      auto result = engine.Run().ValueOrDie();
      std::string log;
      for (const auto& record : result.log) {
        log += record.key.ToString() + ";";
      }
      return log;
    };
    EXPECT_EQ(run(7), run(7)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace dbps
