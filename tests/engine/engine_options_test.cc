// Engine option coverage: cost models, log suppression, random strategy
// in parallel, escalation + policies end-to-end, stats fields.

#include <gtest/gtest.h>

#include "engine/busy_work.h"
#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "semantics/replay_validator.h"
#include "util/stopwatch.h"

namespace dbps {
namespace {

RuleSetPtr CostlyRules(WorkingMemory* wm, int tokens, int64_t cost_us) {
  std::string source = R"(
(relation t (v int))
(rule consume :cost )" + std::to_string(cost_us) +
                       R"(
  (t ^v <v>) --> (remove 1))
)";
  auto rules = LoadProgram(source, wm).ValueOrDie();
  for (int i = 0; i < tokens; ++i) {
    DBPS_CHECK(wm->Insert("t", {Value::Int(i)}).ok());
  }
  return rules;
}

TEST(CostModel, SleepOverlapsAcrossWorkers) {
  WorkingMemory wm;
  auto rules = CostlyRules(&wm, 8, 3000);
  ParallelEngineOptions options;
  options.num_workers = 8;
  options.base.cost_model = CostModel::kSleep;
  ParallelEngine engine(&wm, rules, options);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  // 8 x 3ms sleeping concurrently must finish well under the 24ms serial
  // sum.
  EXPECT_LT(stopwatch.ElapsedSeconds(), 0.015);
  EXPECT_EQ(result.stats.firings, 8u);
  EXPECT_GE(result.stats.peak_parallel_executions, 2);
}

TEST(CostModel, DisablingSimulateCostSkipsCosts) {
  WorkingMemory wm;
  auto rules = CostlyRules(&wm, 4, 50000);  // 50ms each if honoured
  EngineOptions options;
  options.simulate_cost = false;
  SingleThreadEngine engine(&wm, rules, options);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  EXPECT_LT(stopwatch.ElapsedSeconds(), 0.05);
  EXPECT_EQ(result.stats.firings, 4u);
}

TEST(CostModel, BusySpinActuallySpins) {
  Stopwatch stopwatch;
  SimulateCost(2000, CostModel::kBusySpin);
  EXPECT_GE(stopwatch.ElapsedMicros(), 1900);
  EXPECT_STREQ(CostModelToString(CostModel::kSleep), "sleep");
  EXPECT_STREQ(CostModelToString(CostModel::kBusySpin), "busy-spin");
  // Non-positive costs are no-ops.
  SimulateCost(0, CostModel::kBusySpin);
  SimulateCost(-5, CostModel::kSleep);
}

TEST(EngineOptions, RecordLogOffYieldsEmptyLog) {
  WorkingMemory wm;
  auto rules = CostlyRules(&wm, 5, 0);
  EngineOptions options;
  options.record_log = false;
  SingleThreadEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 5u);
  EXPECT_TRUE(result.log.empty());
}

TEST(EngineOptions, ParallelRandomStrategyIsConsistent) {
  WorkingMemory wm;
  auto rules = CostlyRules(&wm, 30, 0);
  auto pristine = wm.Clone();
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.base.strategy = ConflictResolution::kRandom;
  options.base.seed = 7;
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 30u);
  EXPECT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
}

TEST(EngineOptions, EscalationPlusWoundWaitEndToEnd) {
  // Combine the §4.3 extras: escalated Rc locks and wound-wait, under
  // contention.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation pairt (slot int) (v int))
(rule sum2
  (pairt ^slot 1 ^v { < 10 } ^v <a>)
  (pairt ^slot 2 ^v <b>)
  -->
  (modify 1 ^v (+ <a> 1)))
)",
                           &wm)
                   .ValueOrDie();
  ASSERT_TRUE(wm.Insert("pairt", {Value::Int(1), Value::Int(0)}).ok());
  ASSERT_TRUE(wm.Insert("pairt", {Value::Int(2), Value::Int(0)}).ok());
  auto pristine = wm.Clone();
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.rc_escalation_threshold = 1;  // both Rc locks escalate
  options.deadlock_policy = DeadlockPolicy::kWoundWait;
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 10u);
  EXPECT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
}

TEST(EngineStats, ToStringMentionsEverything) {
  EngineStats stats;
  stats.firings = 3;
  stats.halted = true;
  std::string text = stats.ToString();
  EXPECT_NE(text.find("firings=3"), std::string::npos);
  EXPECT_NE(text.find("halted=1"), std::string::npos);
}

}  // namespace
}  // namespace dbps
