// Engine-level fault injection: each engine failpoint site is forced
// deterministically and the run must still terminate, leak no
// transactions, and produce a semantically consistent log. The
// engine.firing.throw tests are the regression for the in-flight RAII
// guard — before it, an exception in ProcessFiring left in_flight_
// undecremented and Run() hung forever.

#include <memory>

#include <gtest/gtest.h>

#include "dbps.h"
#include "testing/workloads.h"

namespace dbps {
namespace {

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisableAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisableAll(); }

  /// Runs the logistics workload with whatever failpoints the test armed;
  /// disarms them before returning so validation is fault-free.
  RunResult RunLogistics(LockProtocol protocol) {
    wm_ = testing::MakeLogisticsWm(/*boxes=*/10, /*robots=*/4, /*sites=*/4,
                                   &rules_);
    pristine_ = wm_->Clone();
    ParallelEngineOptions options;
    options.num_workers = 4;
    options.protocol = protocol;
    options.base.seed = 7;
    ParallelEngine engine(wm_.get(), rules_, options);
    auto result_or = engine.Run();
    DBPS_CHECK(result_or.ok()) << result_or.status();
    live_transactions_ = engine.live_lock_transactions();
    FailpointRegistry::Instance().DisableAll();
    return std::move(result_or).ValueOrDie();
  }

  /// The safety checks every faulted run must pass: replay-valid log,
  /// identical replayed database, no leaked transactions.
  void ExpectConsistent(const RunResult& result) {
    Status replay = ValidateReplay(pristine_.get(), rules_, result.log);
    ASSERT_TRUE(replay.ok()) << replay;
    EXPECT_EQ(pristine_->TotalCount(), wm_->TotalCount());
    EXPECT_EQ(live_transactions_, 0u);
  }

  RuleSetPtr rules_;
  std::unique_ptr<WorkingMemory> wm_;
  std::unique_ptr<WorkingMemory> pristine_;
  size_t live_transactions_ = 0;
};

TEST_F(FaultInjectionTest, WorkerExceptionDoesNotHangRun) {
  FailpointSpec spec;
  spec.one_in = 1;
  spec.max_fires = 3;
  FailpointRegistry::Instance().Configure("engine.firing.throw", spec);

  RunResult result = RunLogistics(LockProtocol::kRcRaWa);
  // The three thrown firings were contained, counted, and rolled back;
  // the claims were re-tried and the run completed normally.
  EXPECT_EQ(result.stats.worker_exceptions, 3u);
  EXPECT_GE(result.stats.aborts, 3u);
  EXPECT_GT(result.stats.firings, 0u);
  EXPECT_GE(result.stats.injected_faults, 3u);
  ExpectConsistent(result);
}

TEST_F(FaultInjectionTest, WorkerExceptionUnderTwoPhase) {
  FailpointSpec spec;
  spec.one_in = 2;
  spec.max_fires = 4;
  FailpointRegistry::Instance().Configure("engine.firing.throw", spec);

  RunResult result = RunLogistics(LockProtocol::kTwoPhase);
  EXPECT_EQ(result.stats.worker_exceptions, 4u);
  ExpectConsistent(result);
}

TEST_F(FaultInjectionTest, InjectedRhsErrorRetiresFiring) {
  FailpointSpec spec;
  spec.one_in = 1;
  spec.max_fires = 2;
  FailpointRegistry::Instance().Configure("engine.firing.rhs_error", spec);

  RunResult result = RunLogistics(LockProtocol::kRcRaWa);
  // Retired firings are dropped permanently (never logged), so the log
  // still replays even though two matches produced no delta.
  EXPECT_EQ(result.stats.rhs_errors, 2u);
  ExpectConsistent(result);
}

TEST_F(FaultInjectionTest, ForcedVictimizationRetriesAndCommits) {
  FailpointSpec spec;
  spec.one_in = 2;
  spec.max_fires = 4;
  FailpointRegistry::Instance().Configure("engine.firing.victimize", spec);

  RunResult result = RunLogistics(LockProtocol::kRcRaWa);
  EXPECT_GE(result.stats.aborts, 4u);
  EXPECT_GE(result.stats.firing_retries, 1u);
  ExpectConsistent(result);
}

TEST_F(FaultInjectionTest, CrashBeforeApplyRollsBackCleanly) {
  FailpointSpec spec;
  spec.one_in = 3;
  spec.max_fires = 5;
  FailpointRegistry::Instance().Configure("engine.firing.crash_before_apply",
                                          spec);

  RunResult result = RunLogistics(LockProtocol::kRcRaWa);
  EXPECT_GE(result.stats.aborts, 5u);
  ExpectConsistent(result);
}

TEST_F(FaultInjectionTest, StallsOnlySlowTheRunDown) {
  FailpointSpec spec;
  spec.probability = 1.0;
  spec.max_fires = 8;
  spec.delay = std::chrono::microseconds(500);
  FailpointRegistry::Instance().Configure("engine.firing.stall", spec);

  RunResult result = RunLogistics(LockProtocol::kRcRaWa);
  EXPECT_GE(result.stats.injected_faults, 8u);
  ExpectConsistent(result);
}

TEST_F(FaultInjectionTest, AbortBackoffIsAccounted) {
  FailpointSpec spec;
  spec.one_in = 1;
  spec.max_fires = 4;
  FailpointRegistry::Instance().Configure("engine.firing.victimize", spec);

  RunResult result = RunLogistics(LockProtocol::kRcRaWa);
  // Every abort makes the worker back off; the time is visible in stats.
  EXPECT_GE(result.stats.aborts, 4u);
  EXPECT_GT(result.stats.backoff_micros, 0u);
  EXPECT_GE(result.stats.max_abort_streak, 1u);
  ExpectConsistent(result);
}

TEST_F(FaultInjectionTest, MixedFaultsStillConsistent) {
  // Several sites at once, bounded so the run always finishes.
  ASSERT_TRUE(FailpointRegistry::Instance()
                  .ConfigureFromString(
                      "engine.firing.throw=1in:5,max:2;"
                      "engine.firing.victimize=1in:3,max:4;"
                      "engine.firing.crash_before_apply=1in:4,max:3;"
                      "lock.acquire.timeout=1in:25,max:3")
                  .ok());

  RunResult result = RunLogistics(LockProtocol::kRcRaWa);
  EXPECT_GT(result.stats.injected_faults, 0u);
  ExpectConsistent(result);
}

}  // namespace
}  // namespace dbps
