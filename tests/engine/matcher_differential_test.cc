// The tentpole's differential gate, engine-level.
//
// Part 1 (deterministic): the same program run through ParallelEngine
// with the serial matcher and with the partitioned matcher (one engine
// worker, same seed) must produce BYTE-IDENTICAL journals — same firing
// order, same seqs, same deltas — because conflict-set contents are
// provably equal after every batch and the selection strategies are
// deterministic on contents (final tie-break on the instantiation key).
//
// Part 2 (chaos): every chaos/workload family runs with the partitioned
// matcher and the in-engine shadow check armed — the serial reference
// matcher consumes the identical change stream and the conflict-set dumps
// are byte-compared after EVERY batch inside the run; any divergence
// fails the engine run, which fails the trial verdict. Replay validation
// and the offline audit then re-check the journal end to end.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dbps.h"
#include "testing/chaos_runner.h"
#include "testing/workloads.h"

namespace dbps {
namespace {

using testing::ChaosOptions;
using testing::ChaosReport;
using testing::ChaosRunner;
using testing::ChaosWorkload;
using testing::MakeLogisticsWm;

/// Renders a run's committed log as replayable journal text.
std::string JournalText(const RunResult& result) {
  std::string text;
  for (const FiringRecord& record : result.log) {
    auto line_or = DeltaToJournalLine(record.delta);
    DBPS_CHECK(line_or.ok()) << line_or.status();
    text += line_or.ValueOrDie();
    text += '\n';
  }
  return text;
}

/// Arms hot-partition splitting, rule re-homing, and match/commit
/// pipelining with aggressive triggers (for short deterministic runs).
void ArmSkewAdaptation(ParallelEngineOptions* options) {
  options->match_split = true;
  options->match_split_ways = 3;
  options->match_split_streak = 1;
  options->match_split_share = 0.5;
  options->match_rehome = true;
  options->match_rehome_streak = 4;
  options->match_pipeline = true;
}

RunResult RunLogistics(size_t match_partitions, size_t match_workers,
                       bool shadow, bool skew_adaptive = false) {
  RuleSetPtr rules;
  auto wm = MakeLogisticsWm(/*boxes=*/12, /*robots=*/4, /*sites=*/4, &rules);
  ParallelEngineOptions options;
  options.base.seed = 42;
  options.num_workers = 1;  // deterministic firing order
  options.num_match_partitions = match_partitions;
  options.match_workers = match_workers;
  options.match_shadow_check = shadow;
  if (skew_adaptive) ArmSkewAdaptation(&options);
  ParallelEngine engine(wm.get(), rules, options);
  auto result_or = engine.Run();
  DBPS_CHECK(result_or.ok()) << result_or.status();
  return std::move(result_or).ValueOrDie();
}

TEST(MatcherDifferentialTest, PartitionedJournalIsByteIdenticalToSerial) {
  const RunResult serial = RunLogistics(0, 1, false);
  const RunResult partitioned = RunLogistics(8, 4, true);
  const RunResult ablation = RunLogistics(8, 1, false);  // serial ablation

  ASSERT_GT(serial.log.size(), 0u);
  EXPECT_EQ(serial.log.size(), partitioned.log.size());
  EXPECT_EQ(JournalText(serial), JournalText(partitioned));
  EXPECT_EQ(JournalText(serial), JournalText(ablation));
  for (size_t i = 0; i < serial.log.size() && i < partitioned.log.size();
       ++i) {
    EXPECT_EQ(serial.log[i].seq, partitioned.log[i].seq);
  }
  // The partitioned run actually partitioned: stats were harvested.
  EXPECT_GT(partitioned.stats.match_batches, 0u);
  EXPECT_EQ(partitioned.stats.match_partitions.size(), 8u);
  EXPECT_EQ(serial.stats.match_batches, 0u);
}

// The tentpole's full stack — hot-partition value-hash splitting,
// dynamic rule re-homing, AND match/commit pipelining — armed at once
// (with the shadow differential watching every batch) must still
// reproduce the serial journal byte for byte: splitting/re-homing
// preserve canonical merge order, and the pipeline's drain-before-claim
// keeps single-worker selection order identical to the inline path.
TEST(MatcherDifferentialTest, SkewAdaptivePipelinedJournalIsByteIdentical) {
  const RunResult serial = RunLogistics(0, 1, false);
  const RunResult adaptive =
      RunLogistics(4, 2, /*shadow=*/true, /*skew_adaptive=*/true);

  ASSERT_GT(serial.log.size(), 0u);
  EXPECT_EQ(JournalText(serial), JournalText(adaptive));
  for (size_t i = 0; i < serial.log.size() && i < adaptive.log.size(); ++i) {
    EXPECT_EQ(serial.log[i].seq, adaptive.log[i].seq);
  }
  // The pipeline actually carried the propagation work.
  EXPECT_GT(adaptive.stats.match_pipeline_batches, 0u);
}

// Adaptive batch limit as a pass-through ablation: with one worker the
// sequencer never folds, the controller only ever lowers the limit, and
// the journal cannot move.
TEST(MatcherDifferentialTest, AdaptiveBatchLimitKeepsJournalStable) {
  RuleSetPtr rules;
  auto wm = MakeLogisticsWm(12, 4, 4, &rules);
  ParallelEngineOptions options;
  options.base.seed = 42;
  options.num_workers = 1;
  options.num_match_partitions = 4;
  options.adaptive_batch_limit = true;
  ParallelEngine engine(wm.get(), rules, options);
  auto result_or = engine.Run();
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult serial = RunLogistics(0, 1, false);
  EXPECT_EQ(JournalText(serial), JournalText(result_or.ValueOrDie()));
  EXPECT_GE(result_or.ValueOrDie().stats.effective_batch_limit, 1u);
}

TEST(MatcherDifferentialTest, TreatInnerMatcherAgreesToo) {
  RuleSetPtr rules;
  auto wm = MakeLogisticsWm(10, 3, 3, &rules);
  ParallelEngineOptions options;
  options.base.seed = 7;
  options.base.matcher = MatcherKind::kTreat;
  options.num_workers = 1;
  options.num_match_partitions = 4;
  options.match_workers = 2;
  options.match_shadow_check = true;  // TREAT shadows TREAT
  ParallelEngine engine(wm.get(), rules, options);
  auto result_or = engine.Run();
  ASSERT_TRUE(result_or.ok()) << result_or.status();

  auto serial_wm = MakeLogisticsWm(10, 3, 3, &rules);
  ParallelEngineOptions serial_options;
  serial_options.base.seed = 7;
  serial_options.base.matcher = MatcherKind::kTreat;
  serial_options.num_workers = 1;
  ParallelEngine serial_engine(serial_wm.get(), rules, serial_options);
  auto serial_or = serial_engine.Run();
  ASSERT_TRUE(serial_or.ok()) << serial_or.status();

  EXPECT_EQ(JournalText(serial_or.ValueOrDie()),
            JournalText(result_or.ValueOrDie()));
}

// Every chaos/workload family under the partitioned matcher with the
// per-batch shadow differential armed. The "Chaos" suite name puts this
// in the chaos tier, where DBPS_CHAOS_TRIALS/DBPS_CHAOS_SEED scale it.
class MatcherDifferentialChaosTest
    : public ::testing::TestWithParam<ChaosWorkload> {};

TEST_P(MatcherDifferentialChaosTest, PartitionedMatchSurvivesFamily) {
  const size_t trials = testing::ChaosTrialMultiplier();
  for (size_t t = 0; t < trials; ++t) {
    ChaosOptions options;
    options.workload = GetParam();
    options.seed = testing::ChaosSeedBase() + 7700 + t * 13;
    options.fail_rate = 0.03;
    options.client_sessions = 2;
    options.txns_per_session = 6;
    options.match_partitions = 4;
    options.match_workers = 2;
    options.match_shadow_check = true;
    if (GetParam() == ChaosWorkload::kCrashRecover) {
      options.journal_path = ::testing::TempDir() +
                             "matcher_diff_crash_" + std::to_string(t) +
                             ".wal";
      options.group_commit = true;
      options.checkpoint_every = 8;
    }
    ChaosReport report = ChaosRunner::RunTrial(options);
    EXPECT_TRUE(report.verdict.ok())
        << "seed " << options.seed << ": " << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, MatcherDifferentialChaosTest,
    ::testing::Values(ChaosWorkload::kRulesOnly, ChaosWorkload::kMultiUser,
                      ChaosWorkload::kNetwork, ChaosWorkload::kCrashRecover,
                      ChaosWorkload::kZipfian, ChaosWorkload::kSnapshotScan,
                      ChaosWorkload::kMixedOltp),
    [](const ::testing::TestParamInfo<ChaosWorkload>& info) {
      switch (info.param) {
        case ChaosWorkload::kRulesOnly: return std::string("RulesOnly");
        case ChaosWorkload::kMultiUser: return std::string("MultiUser");
        case ChaosWorkload::kNetwork: return std::string("Network");
        case ChaosWorkload::kCrashRecover: return std::string("CrashRecover");
        case ChaosWorkload::kZipfian: return std::string("Zipfian");
        case ChaosWorkload::kSnapshotScan: return std::string("SnapshotScan");
        case ChaosWorkload::kMixedOltp: return std::string("MixedOltp");
      }
      return std::string("Unknown");
    });

// Every family again with the tentpole's skew-adaptation stack armed:
// splitting + re-homing (aggressive triggers) + pipelining + the
// adaptive batch limit, all under the per-batch shadow differential.
// Fault injection, client sessions, crash recovery, and the offline
// audit run exactly as in the base sweep.
class SkewAdaptiveChaosTest : public ::testing::TestWithParam<ChaosWorkload> {
};

TEST_P(SkewAdaptiveChaosTest, ArmedAdaptationSurvivesFamily) {
  const size_t trials = testing::ChaosTrialMultiplier();
  for (size_t t = 0; t < trials; ++t) {
    ChaosOptions options;
    options.workload = GetParam();
    options.seed = testing::ChaosSeedBase() + 8850 + t * 17;
    options.fail_rate = 0.03;
    options.client_sessions = 2;
    options.txns_per_session = 6;
    options.match_partitions = 4;
    options.match_workers = 2;
    options.match_shadow_check = true;
    options.match_split = true;
    options.match_rehome = true;
    options.match_pipeline = true;
    options.adaptive_batch_limit = true;
    if (GetParam() == ChaosWorkload::kCrashRecover) {
      options.journal_path = ::testing::TempDir() + "skew_adapt_crash_" +
                             std::to_string(t) + ".wal";
      options.group_commit = true;
      options.checkpoint_every = 8;
    }
    ChaosReport report = ChaosRunner::RunTrial(options);
    EXPECT_TRUE(report.verdict.ok())
        << "seed " << options.seed << ": " << report.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, SkewAdaptiveChaosTest,
    ::testing::Values(ChaosWorkload::kRulesOnly, ChaosWorkload::kMultiUser,
                      ChaosWorkload::kNetwork, ChaosWorkload::kCrashRecover,
                      ChaosWorkload::kZipfian, ChaosWorkload::kSnapshotScan,
                      ChaosWorkload::kMixedOltp),
    [](const ::testing::TestParamInfo<ChaosWorkload>& info) {
      switch (info.param) {
        case ChaosWorkload::kRulesOnly: return std::string("RulesOnly");
        case ChaosWorkload::kMultiUser: return std::string("MultiUser");
        case ChaosWorkload::kNetwork: return std::string("Network");
        case ChaosWorkload::kCrashRecover: return std::string("CrashRecover");
        case ChaosWorkload::kZipfian: return std::string("Zipfian");
        case ChaosWorkload::kSnapshotScan: return std::string("SnapshotScan");
        case ChaosWorkload::kMixedOltp: return std::string("MixedOltp");
      }
      return std::string("Unknown");
    });

// Audit-evidence sampling end to end: with --audit-every semantics armed
// (evidence on every 3rd line only) the run's journal still passes the
// offline auditor — unaudited lines are tracked as order-only history and
// the victim ledger tolerates the sampled gaps.
TEST(MatcherDifferentialChaosTest, SampledAuditEvidenceStaysClean) {
  ChaosOptions options;
  options.workload = ChaosWorkload::kMultiUser;
  options.seed = testing::ChaosSeedBase() + 8801;
  options.fail_rate = 0.03;
  options.match_partitions = 4;
  options.match_shadow_check = true;
  options.audit_every = 3;
  ChaosReport report = ChaosRunner::RunTrial(options);
  EXPECT_TRUE(report.verdict.ok()) << report.ToString();
  EXPECT_LT(report.audit.audited_records, report.audit.records)
      << "sampling did not reduce audited records";
}

// The adaptive group-commit flush deadline under delayed fsyncs: the
// network chaos profile stalls the server.journal.fsync_delay site, so
// with a short deadline the flusher must release stalled groups early.
TEST(MatcherDifferentialChaosTest, FsyncDelayDeadlineFlushChaosTrial) {
  ChaosOptions options;
  options.workload = ChaosWorkload::kNetwork;
  options.seed = testing::ChaosSeedBase() + 9902;
  options.fail_rate = 0.05;
  options.flush_deadline = std::chrono::milliseconds(1);
  options.match_partitions = 4;
  options.match_shadow_check = true;
  ChaosReport report = ChaosRunner::RunTrial(options);
  EXPECT_TRUE(report.verdict.ok()) << report.ToString();
  // The deadline flusher is allowed to be idle on a fast run, but the
  // 1ms deadline under injected delays virtually always trips; either
  // way the journal stayed consistent, which is the property.
}

}  // namespace
}  // namespace dbps
