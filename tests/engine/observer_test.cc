// EngineObserver lifecycle events.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>

#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "lang/compiler.h"

namespace dbps {
namespace {

TEST(Observer, SingleThreadCommitEvents) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1))
(make t ^v 1)
(make t ^v 2)
(make t ^v 3)
)",
                           &wm)
                   .ValueOrDie();
  std::vector<std::string> commits;
  uint64_t batch_ends = 0;
  uint64_t last_seq = 0;
  EngineOptions options;
  options.observer = [&](const EngineEvent& event) {
    if (event.kind == EngineEvent::Kind::kBatchEnd) {
      ++batch_ends;
      return;
    }
    ASSERT_EQ(event.kind, EngineEvent::Kind::kCommit);
    commits.push_back(event.key->rule_name);
    last_seq = event.seq;
  };
  SingleThreadEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  ASSERT_EQ(commits.size(), result.stats.firings);
  for (const auto& name : commits) EXPECT_EQ(name, "consume");
  // The single-thread engine commits in batches of one: every commit is
  // followed by its own batch-end, and commit seqs count up from 0.
  EXPECT_EQ(batch_ends, commits.size());
  EXPECT_EQ(last_seq + 1, result.stats.firings);
}

TEST(Observer, ParallelEventsMatchStats) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation hot (v int))
(rule bump :cost 100 (hot ^v { < 25 } ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make hot ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  std::mutex mu;
  uint64_t commits = 0, aborts = 0, stales = 0, batch_ends = 0;
  uint64_t commits_at_last_batch_end = 0;
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.base.observer = [&](const EngineEvent& event) {
    std::lock_guard<std::mutex> guard(mu);
    switch (event.kind) {
      case EngineEvent::Kind::kCommit:
        ++commits;
        break;
      case EngineEvent::Kind::kAbort:
        ++aborts;
        break;
      case EngineEvent::Kind::kStale:
        ++stales;
        break;
      case EngineEvent::Kind::kBatchEnd:
        ++batch_ends;
        commits_at_last_batch_end = commits;
        // The post-batch high-water mark equals commits seen so far: no
        // commit event is ever still pending at its batch boundary.
        EXPECT_EQ(event.seq, commits);
        break;
    }
  };
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(commits, result.stats.firings);
  EXPECT_EQ(aborts, result.stats.aborts);
  EXPECT_EQ(stales, result.stats.stale_skips);
  EXPECT_EQ(commits, 25u);
  // Batches group >= 1 commits, and every commit belongs to a batch.
  EXPECT_GE(batch_ends, 1u);
  EXPECT_LE(batch_ends, commits);
  EXPECT_EQ(commits_at_last_batch_end, commits);
}

TEST(Observer, CommitEventsAreInCommitOrder) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wm.Insert("t", {Value::Int(i)}).ok());
  }
  std::vector<std::string> keys;  // guarded by the commit lock
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.base.observer = [&keys](const EngineEvent& event) {
    if (event.kind == EngineEvent::Kind::kCommit) {
      keys.push_back(event.key->ToString());
    }
  };
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  ASSERT_EQ(keys.size(), result.log.size());
  for (size_t i = 0; i < keys.size(); ++i) {
    EXPECT_EQ(keys[i], result.log[i].key.ToString());
  }
}

}  // namespace
}  // namespace dbps
