#include <gtest/gtest.h>

#include <set>

#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "semantics/replay_validator.h"
#include "testing/workloads.h"

namespace dbps {
namespace {

struct ProtocolCase {
  LockProtocol protocol;
  AbortPolicy policy;
};

class ParallelEngineTest : public ::testing::TestWithParam<ProtocolCase> {
 protected:
  ParallelEngineOptions Options(size_t workers = 4) {
    ParallelEngineOptions options;
    options.num_workers = workers;
    options.protocol = GetParam().protocol;
    options.abort_policy = GetParam().policy;
    return options;
  }
};

TEST_P(ParallelEngineTest, ConsumesAllTokens) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wm.Insert("t", {Value::Int(i)}).ok());
  }
  auto pristine = wm.Clone();
  ParallelEngine engine(&wm, rules, Options());
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 50u);
  EXPECT_EQ(wm.Count(Sym("t")), 0u);
  EXPECT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
}

TEST_P(ParallelEngineTest, HaltStopsFurtherClaims) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule one (t ^v <v>) --> (remove 1) (halt))
)",
                           &wm)
                   .ValueOrDie();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wm.Insert("t", {Value::Int(i)}).ok());
  }
  ParallelEngine engine(&wm, rules, Options());
  auto result = engine.Run().ValueOrDie();
  EXPECT_TRUE(result.stats.halted);
  // At least one halt fired; in-flight firings may commit, but most
  // tokens must survive.
  EXPECT_GE(result.stats.firings, 1u);
  EXPECT_LE(result.stats.firings, 4u);  // <= num_workers
  EXPECT_GE(wm.Count(Sym("t")), 16u);
}

TEST_P(ParallelEngineTest, MaxFiringsRespected) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule spin (t ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make t ^v 0)
(make t ^v 100)
)",
                           &wm)
                   .ValueOrDie();
  ParallelEngineOptions options = Options(2);
  options.base.max_firings = 30;
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_LE(result.stats.firings, 30u);
  EXPECT_TRUE(result.stats.hit_max_firings);
}

TEST_P(ParallelEngineTest, SharedCounterStaysExact) {
  // All workers increment the same counter tuple: every committed firing
  // must be serialized correctly — the final value equals the number of
  // committed firings.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation counter (v int))
(rule bump (counter ^v { < 40 } ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make counter ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  auto pristine = wm.Clone();
  ParallelEngine engine(&wm, rules, Options(8));
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 40u);
  EXPECT_EQ(wm.Scan(Sym("counter"))[0]->value(0), Value::Int(40));
  EXPECT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
}

TEST_P(ParallelEngineTest, LogisticsWorkloadIsConsistent) {
  RuleSetPtr rules;
  auto wm = testing::MakeLogisticsWm(10, 5, 6, &rules);
  auto pristine = wm->Clone();
  ParallelEngine engine(wm.get(), rules, Options(6));
  auto result = engine.Run().ValueOrDie();
  EXPECT_FALSE(result.stats.hit_max_firings);
  // The workload can physically strand boxes (a stalled robot never
  // revisits a site), so completeness is not guaranteed — but progress
  // and the logical invariants are.
  EXPECT_GE(wm->Count(Sym("done")), 5u);
  // Every accounted box is delivered, and accounted exactly once.
  std::set<int64_t> accounted;
  for (const auto& done : wm->Scan(Sym("done"))) {
    EXPECT_TRUE(accounted.insert(done->value(0).AsInt()).second);
  }
  for (const auto& box : wm->Scan(Sym("box"))) {
    if (accounted.count(box->value(0).AsInt()) > 0) {
      EXPECT_EQ(box->value(3), Value::Symbol("delivered"));
    }
  }
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST_P(ParallelEngineTest, SingleWorkerMatchesSingleThreadOutcome) {
  RuleSetPtr rules;
  auto wm_parallel = testing::MakeLogisticsWm(6, 3, 4, &rules);
  auto wm_single = wm_parallel->Clone();

  ParallelEngine parallel(wm_parallel.get(), rules, Options(1));
  auto parallel_result = parallel.Run().ValueOrDie();

  SingleThreadEngine single(wm_single.get(), rules);
  auto single_result = single.Run().ValueOrDie();

  EXPECT_EQ(parallel_result.stats.firings, single_result.stats.firings);
  EXPECT_EQ(wm_parallel->Count(Sym("done")), wm_single->Count(Sym("done")));
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ParallelEngineTest,
    ::testing::Values(
        ProtocolCase{LockProtocol::kTwoPhase, AbortPolicy::kAbort},
        ProtocolCase{LockProtocol::kRcRaWa, AbortPolicy::kAbort},
        ProtocolCase{LockProtocol::kRcRaWa, AbortPolicy::kRevalidate}),
    [](const auto& info) {
      std::string name = info.param.protocol == LockProtocol::kTwoPhase
                             ? "TwoPhase"
                             : "RcRaWa";
      if (info.param.protocol == LockProtocol::kRcRaWa) {
        name += info.param.policy == AbortPolicy::kAbort ? "Abort"
                                                         : "Revalidate";
      }
      return name;
    });

// --- targeted interference scenarios ------------------------------------

// Figure 4.4: two productions in circular Rc/Wa conflict — each reads
// what the other writes. Exactly one of the two can commit from any
// given state; the run must stay consistent.
TEST(ParallelEngineScenarios, CircularConflictOnlyOneCommitsPerRound) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation cell (name symbol) (v int))
(rule left
  (cell ^name q ^v { > 0 })
  (cell ^name r ^v { > 0 })
  -->
  (modify 2 ^v 0))
(rule right
  (cell ^name r ^v { > 0 })
  (cell ^name q ^v { > 0 })
  -->
  (modify 2 ^v 0))
(make cell ^name q ^v 1)
(make cell ^name r ^v 1)
)",
                           &wm)
                   .ValueOrDie();
  auto pristine = wm.Clone();
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.protocol = LockProtocol::kRcRaWa;
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  // Whatever interleaving happened, the log must be a valid serial one.
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  EXPECT_TRUE(valid.ok()) << valid;
  // Firing `left` zeroes r, which disables `right`, and vice versa — so
  // exactly one of the two can ever commit (the paper: "the commitment
  // of one production always forces the other to abort").
  EXPECT_EQ(result.stats.firings, 1u);
}

// The paper's negation scenario: a creator (insert intent Wa) conflicts
// with a negation holder (relation-level Rc). Under 2PL the creator
// blocks; under Rc/Ra/Wa it proceeds and the negation holder aborts at
// the creator's commit. Both must end consistent.
TEST(ParallelEngineScenarios, CreatorVsNegationHolder) {
  for (LockProtocol protocol :
       {LockProtocol::kTwoPhase, LockProtocol::kRcRaWa}) {
    WorkingMemory wm;
    auto rules = LoadProgram(R"(
(relation job (id int) (state symbol))
(relation veto (job int))
(rule file-veto :priority 5
  (job ^id <j> ^state fresh)
  -->
  (modify 1 ^state vetoed)
  (make veto ^job <j>))
(rule approve :priority 5
  (job ^id <j> ^state fresh)
  -(veto ^job <j>)
  -->
  (modify 1 ^state approved))
)",
                             &wm)
                     .ValueOrDie();
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          wm.Insert("job", {Value::Int(i), Value::Symbol("fresh")}).ok());
    }
    auto pristine = wm.Clone();
    ParallelEngineOptions options;
    options.num_workers = 4;
    options.protocol = protocol;
    ParallelEngine engine(&wm, rules, options);
    auto result = engine.Run().ValueOrDie();
    Status valid = ValidateReplay(pristine.get(), rules, result.log);
    EXPECT_TRUE(valid.ok()) << valid << " protocol "
                            << LockProtocolToString(protocol);
    // Every job ends either vetoed or approved, never fresh, never both
    // vetoed and approved (the rules are mutually exclusive per job).
    for (const auto& job : wm.Scan(Sym("job"))) {
      EXPECT_NE(job->value(1), Value::Symbol("fresh")) << job->ToString();
    }
    for (const auto& veto : wm.Scan(Sym("veto"))) {
      int64_t id = veto->value(0).AsInt();
      for (const auto& job : wm.Scan(Sym("job"))) {
        if (job->value(0).AsInt() == id) {
          EXPECT_EQ(job->value(1), Value::Symbol("vetoed"));
        }
      }
    }
  }
}

TEST(ParallelEngineScenarios, RcRaWaAbortsWhereTwoPhaseBlocks) {
  // High-contention update workload with long actions: the Rc/Ra/Wa
  // protocol should show aborts (the paper's wasted work) while 2PL
  // shows none (it blocks instead).
  auto build = [](WorkingMemory* wm) {
    auto rules = LoadProgram(R"(
(relation hot (id int) (v int))
(rule touch :cost 200
  (hot ^id <i> ^v { < 30 } ^v <v>)
  -->
  (modify 1 ^v (+ <v> 1)))
)",
                             wm)
                     .ValueOrDie();
    for (int i = 0; i < 2; ++i) {
      DBPS_CHECK(wm->Insert("hot", {Value::Int(i), Value::Int(0)}).ok());
    }
    return rules;
  };

  WorkingMemory wm_rc;
  auto rules = build(&wm_rc);
  ParallelEngineOptions rc_options;
  rc_options.num_workers = 8;
  rc_options.protocol = LockProtocol::kRcRaWa;
  auto rc_result = ParallelEngine(&wm_rc, rules, rc_options).Run()
                       .ValueOrDie();

  WorkingMemory wm_2pl;
  rules = build(&wm_2pl);
  ParallelEngineOptions two_options = rc_options;
  two_options.protocol = LockProtocol::kTwoPhase;
  auto two_result =
      ParallelEngine(&wm_2pl, rules, two_options).Run().ValueOrDie();

  EXPECT_EQ(rc_result.stats.firings, 60u);
  EXPECT_EQ(two_result.stats.firings, 60u);
  // 2PL never aborts via the Rc–Wa rule (only deadlocks could abort it).
  EXPECT_EQ(two_result.stats.aborts, two_result.stats.deadlocks);
}

}  // namespace
}  // namespace dbps
