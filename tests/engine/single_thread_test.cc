#include <gtest/gtest.h>

#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "semantics/replay_validator.h"
#include "testing/workloads.h"

namespace dbps {
namespace {

TEST(SingleThreadEngine, EmptyConflictSetTerminatesImmediately) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule r (t ^v 1) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  SingleThreadEngine engine(&wm, rules);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 0u);
  EXPECT_TRUE(result.log.empty());
}

TEST(SingleThreadEngine, FiresUntilQuiescence) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1))
(make t ^v 1)
(make t ^v 2)
(make t ^v 3)
)",
                           &wm)
                   .ValueOrDie();
  SingleThreadEngine engine(&wm, rules);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 3u);
  EXPECT_EQ(wm.Count(Sym("t")), 0u);
}

TEST(SingleThreadEngine, HaltStopsMidRun) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1) (halt))
(make t ^v 1)
(make t ^v 2)
(make t ^v 3)
)",
                           &wm)
                   .ValueOrDie();
  SingleThreadEngine engine(&wm, rules);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 1u);
  EXPECT_TRUE(result.stats.halted);
  EXPECT_EQ(wm.Count(Sym("t")), 2u);
}

TEST(SingleThreadEngine, MaxFiringsGuardsNonTermination) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule spin (t ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make t ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  EngineOptions options;
  options.max_firings = 25;
  SingleThreadEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 25u);
  EXPECT_TRUE(result.stats.hit_max_firings);
  EXPECT_EQ(wm.Scan(Sym("t"))[0]->value(0), Value::Int(25));
}

TEST(SingleThreadEngine, RefractionPreventsRefiringSameMatch) {
  // The rule matches but does not change its own match: with refraction
  // it fires exactly once per instantiation.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(relation log (v int))
(rule observe (t ^v <v>) --> (make log ^v <v>))
(make t ^v 7)
)",
                           &wm)
                   .ValueOrDie();
  SingleThreadEngine engine(&wm, rules);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 1u);
  EXPECT_EQ(wm.Count(Sym("log")), 1u);
}

TEST(SingleThreadEngine, PrioritySelectsDominant) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(relation winner (name symbol))
(rule low :priority 1 (t ^v <v>) --> (make winner ^name low) (remove 1))
(rule high :priority 9 (t ^v <v>) --> (make winner ^name high) (remove 1))
(make t ^v 1)
)",
                           &wm)
                   .ValueOrDie();
  EngineOptions options;
  options.strategy = ConflictResolution::kPriority;
  SingleThreadEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 1u);
  EXPECT_EQ(wm.Scan(Sym("winner"))[0]->value(0), Value::Symbol("high"));
}

TEST(SingleThreadEngine, LexPrefersMostRecent) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(relation order (v int))
(rule consume (t ^v <v>) --> (make order ^v <v>) (remove 1))
(make t ^v 1)
(make t ^v 2)
(make t ^v 3)
)",
                           &wm)
                   .ValueOrDie();
  EngineOptions options;
  options.strategy = ConflictResolution::kLex;
  SingleThreadEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  ASSERT_EQ(result.log.size(), 3u);
  // LEX fires newest first: v=3, then 2, then 1. The `order` relation
  // records the firing order via its own time tags.
  std::vector<int64_t> order;
  for (const auto& wme : wm.Scan(Sym("order"))) {
    order.push_back(wme->value(0).AsInt());
  }
  std::sort(order.begin(), order.end());
  EXPECT_EQ(order, (std::vector<int64_t>{1, 2, 3}));
  // First fired == most recent initial tag (v=3).
  auto first_key = result.log[0].key;
  EXPECT_EQ(first_key.rule_name, "consume");
}

TEST(SingleThreadEngine, RhsErrorSkipsFiringAndContinues) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(relation out (v int))
(rule div (t ^v <v>) --> (make out ^v (/ 100 <v>)) (remove 1))
(make t ^v 0)
(make t ^v 4)
)",
                           &wm)
                   .ValueOrDie();
  SingleThreadEngine engine(&wm, rules);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.rhs_errors, 1u);
  EXPECT_EQ(result.stats.firings, 1u);
  ASSERT_EQ(wm.Count(Sym("out")), 1u);
  EXPECT_EQ(wm.Scan(Sym("out"))[0]->value(0), Value::Int(25));
}

TEST(SingleThreadEngine, StepApiDrivesOneFiringAtATime) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1))
(make t ^v 1)
(make t ^v 2)
)",
                           &wm)
                   .ValueOrDie();
  SingleThreadEngine engine(&wm, rules);
  ASSERT_TRUE(engine.Init().ok());
  EXPECT_EQ(engine.conflict_set().size(), 2u);
  EXPECT_TRUE(engine.Step().ValueOrDie());
  EXPECT_EQ(engine.conflict_set().size(), 1u);
  EXPECT_TRUE(engine.Step().ValueOrDie());
  EXPECT_FALSE(engine.Step().ValueOrDie());
  EXPECT_EQ(engine.stats().firings, 2u);
}

TEST(SingleThreadEngine, OwnLogAlwaysReplays) {
  RuleSetPtr rules;
  auto wm = testing::MakeLogisticsWm(6, 3, 4, &rules);
  auto pristine = wm->Clone();
  EngineOptions options;
  options.strategy = ConflictResolution::kLex;
  SingleThreadEngine engine(wm.get(), rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_GT(result.stats.firings, 0u);
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  EXPECT_TRUE(valid.ok()) << valid;
}

TEST(SingleThreadEngine, DifferentStrategiesAllQuiesceToSameTokenCount) {
  // The logistics workload is confluent in outcome size (every box ends
  // delivered+accounted) regardless of strategy.
  for (ConflictResolution strategy :
       {ConflictResolution::kLex, ConflictResolution::kMea,
        ConflictResolution::kFifo, ConflictResolution::kPriority,
        ConflictResolution::kRandom}) {
    RuleSetPtr rules;
    auto wm = testing::MakeLogisticsWm(5, 5, 5, &rules);
    EngineOptions options;
    options.strategy = strategy;
    options.seed = 99;
    SingleThreadEngine engine(wm.get(), rules, options);
    auto result = engine.Run().ValueOrDie();
    EXPECT_FALSE(result.stats.hit_max_firings);
    EXPECT_EQ(wm->Count(Sym("done")), 5u)
        << "strategy " << ConflictResolutionToString(strategy);
  }
}

TEST(SingleThreadEngine, NaiveMatcherGivesSameRun) {
  RuleSetPtr rules;
  auto wm_rete = testing::MakeLogisticsWm(4, 2, 3, &rules);
  auto wm_naive = wm_rete->Clone();

  EngineOptions options;
  options.strategy = ConflictResolution::kLex;

  SingleThreadEngine rete_engine(wm_rete.get(), rules, options);
  auto rete_result = rete_engine.Run().ValueOrDie();

  options.matcher = MatcherKind::kNaive;
  SingleThreadEngine naive_engine(wm_naive.get(), rules, options);
  auto naive_result = naive_engine.Run().ValueOrDie();

  ASSERT_EQ(rete_result.log.size(), naive_result.log.size());
  for (size_t i = 0; i < rete_result.log.size(); ++i) {
    EXPECT_EQ(rete_result.log[i].key.ToString(),
              naive_result.log[i].key.ToString());
  }
}

}  // namespace
}  // namespace dbps
