#include <gtest/gtest.h>

#include "engine/single_thread_engine.h"
#include "engine/static_partition_engine.h"
#include "lang/compiler.h"
#include "semantics/replay_validator.h"
#include "testing/workloads.h"

namespace dbps {
namespace {

TEST(StaticPartitionEngine, FiresNonInterferingSubsetPerCycle) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  for (int i = 0; i < 32; ++i) {
    ASSERT_TRUE(wm.Insert("t", {Value::Int(i)}).ok());
  }
  auto pristine = wm.Clone();
  StaticPartitionOptions options;
  options.num_workers = 4;
  StaticPartitionEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 32u);
  // All 32 removals are pairwise independent: one cycle suffices.
  EXPECT_EQ(result.stats.cycles, 1u);
  EXPECT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
}

TEST(StaticPartitionEngine, InterferingFiringsSerializeAcrossCycles) {
  // Every firing creates into `log` — relation-level write-write
  // interference — so each cycle fires exactly one.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(relation log (v int))
(rule consume (t ^v <v>) --> (remove 1) (make log ^v <v>))
)",
                           &wm)
                   .ValueOrDie();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(wm.Insert("t", {Value::Int(i)}).ok());
  }
  StaticPartitionOptions options;
  StaticPartitionEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 6u);
  EXPECT_EQ(result.stats.cycles, 6u);  // full serialization
  EXPECT_EQ(wm.Count(Sym("log")), 6u);
}

TEST(StaticPartitionEngine, HaltStopsAfterCycle) {
  // The (make log ...) makes firings interfere, so each cycle fires one
  // production; the halt then stops the run after the first cycle.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(relation log (v int))
(rule consume (t ^v <v>) --> (remove 1) (make log ^v <v>) (halt))
)",
                           &wm)
                   .ValueOrDie();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wm.Insert("t", {Value::Int(i)}).ok());
  }
  StaticPartitionOptions options;
  StaticPartitionEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_TRUE(result.stats.halted);
  EXPECT_EQ(result.stats.firings, 1u);
  EXPECT_EQ(result.stats.cycles, 1u);
}

TEST(StaticPartitionEngine, MaxFiringsExact) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule consume (t ^v <v>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wm.Insert("t", {Value::Int(i)}).ok());
  }
  StaticPartitionOptions options;
  options.base.max_firings = 7;
  StaticPartitionEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 7u);
  EXPECT_TRUE(result.stats.hit_max_firings);
}

TEST(StaticPartitionEngine, LogisticsRunReplaysAsSerial) {
  RuleSetPtr rules;
  auto wm = testing::MakeLogisticsWm(8, 4, 5, &rules);
  auto pristine = wm->Clone();
  StaticPartitionOptions options;
  options.num_workers = 4;
  StaticPartitionEngine engine(wm.get(), rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_GT(result.stats.firings, 0u);
  EXPECT_FALSE(result.stats.hit_max_firings);
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  EXPECT_TRUE(valid.ok()) << valid;  // Theorem 1, empirically
}

TEST(StaticPartitionEngine, SharedCounterStaysExact) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation counter (v int))
(rule bump (counter ^v { < 15 } ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make counter ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  StaticPartitionOptions options;
  StaticPartitionEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 15u);
  EXPECT_EQ(wm.Scan(Sym("counter"))[0]->value(0), Value::Int(15));
  // One firing per cycle: bump conflicts with itself.
  EXPECT_EQ(result.stats.cycles, 15u);
}

}  // namespace
}  // namespace dbps
