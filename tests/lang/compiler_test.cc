#include <gtest/gtest.h>

#include "lang/compiler.h"

namespace dbps {
namespace {

constexpr const char* kSchema = R"(
(relation box (id int) (at symbol) (weight int))
(relation robot (name symbol) (at symbol) (holding any))
(relation blocked (at symbol))
)";

CompiledProgram MustCompile(const std::string& body) {
  auto program = CompileProgram(std::string(kSchema) + body);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).ValueOrDie();
}

Status CompileError(const std::string& body) {
  auto program = CompileProgram(std::string(kSchema) + body);
  EXPECT_FALSE(program.ok());
  return program.ok() ? Status::OK() : program.status();
}

TEST(Compiler, RelationsAreCollected) {
  auto program = MustCompile("");
  ASSERT_EQ(program.relations.size(), 3u);
  EXPECT_EQ(program.relations[0].name(), Sym("box"));
  EXPECT_EQ(program.relations[1].arity(), 3u);
}

TEST(Compiler, ConstantTestsGoToAlpha) {
  auto program = MustCompile(R"(
    (rule r (box ^at dock ^weight { > 10 }) --> (remove 1)))");
  RulePtr rule = program.rules->Find("r");
  ASSERT_NE(rule, nullptr);
  const Condition& cond = rule->conditions()[0];
  ASSERT_EQ(cond.constant_tests.size(), 2u);
  EXPECT_EQ(cond.constant_tests[0].field, 1u);  // ^at
  EXPECT_EQ(cond.constant_tests[0].pred, TestPredicate::kEq);
  EXPECT_EQ(cond.constant_tests[0].value, Value::Symbol("dock"));
  EXPECT_EQ(cond.constant_tests[1].field, 2u);  // ^weight
  EXPECT_EQ(cond.constant_tests[1].pred, TestPredicate::kGt);
  EXPECT_TRUE(cond.intra_tests.empty());
  EXPECT_TRUE(cond.join_tests.empty());
}

TEST(Compiler, VariableBindingAndIntraTest) {
  // <x> binds at ^id; the second occurrence in the same CE becomes an
  // intra-WME equality test.
  auto program = MustCompile(R"(
    (rule r (box ^id <x> ^weight <x>) --> (remove 1)))");
  const Condition& cond = program.rules->Find("r")->conditions()[0];
  EXPECT_TRUE(cond.constant_tests.empty());
  ASSERT_EQ(cond.intra_tests.size(), 1u);
  EXPECT_EQ(cond.intra_tests[0].field, 2u);
  EXPECT_EQ(cond.intra_tests[0].other_field, 0u);
  EXPECT_EQ(cond.intra_tests[0].pred, TestPredicate::kEq);
}

TEST(Compiler, CrossCeVariableBecomesJoinTest) {
  auto program = MustCompile(R"(
    (rule r
      (box ^id <b> ^at <where>)
      (robot ^at <where> ^holding { <> <b> })
      -->
      (remove 1)))");
  const Rule& rule = *program.rules->Find("r");
  const Condition& robot = rule.conditions()[1];
  ASSERT_EQ(robot.join_tests.size(), 2u);
  // ^at <where> joins CE0's ^at (field 1).
  EXPECT_EQ(robot.join_tests[0].field, 1u);
  EXPECT_EQ(robot.join_tests[0].pred, TestPredicate::kEq);
  EXPECT_EQ(robot.join_tests[0].other_ce, 0u);
  EXPECT_EQ(robot.join_tests[0].other_field, 1u);
  // ^holding { <> <b> } joins CE0's ^id with kNe.
  EXPECT_EQ(robot.join_tests[1].field, 2u);
  EXPECT_EQ(robot.join_tests[1].pred, TestPredicate::kNe);
  EXPECT_EQ(robot.join_tests[1].other_field, 0u);
}

TEST(Compiler, NegatedCeJoinsOuterBindings) {
  auto program = MustCompile(R"(
    (rule r
      (box ^id <b> ^at <where>)
      -(blocked ^at <where>)
      -->
      (remove 1)))");
  const Rule& rule = *program.rules->Find("r");
  EXPECT_EQ(rule.num_positive(), 1u);
  const Condition& neg = rule.conditions()[1];
  EXPECT_TRUE(neg.negated);
  ASSERT_EQ(neg.join_tests.size(), 1u);
  EXPECT_EQ(neg.join_tests[0].other_ce, 0u);
  EXPECT_EQ(neg.join_tests[0].other_field, 1u);
}

TEST(Compiler, NegatedCeLocalBindingStaysLocal) {
  // A variable first bound inside a negated CE may be reused inside the
  // same CE (intra test) but not outside it.
  auto program = MustCompile(R"(
    (rule r
      (box ^id 1)
      -(robot ^name <n> ^holding <n>)
      -->
      (remove 1)))");
  const Condition& neg = program.rules->Find("r")->conditions()[1];
  ASSERT_EQ(neg.intra_tests.size(), 1u);
  EXPECT_EQ(neg.intra_tests[0].field, 2u);
  EXPECT_EQ(neg.intra_tests[0].other_field, 0u);
}

TEST(Compiler, ActionsAreLowered) {
  auto program = MustCompile(R"(
    (rule r
      (box ^id <b> ^weight <w>)
      (robot ^name <r>)
      -->
      (make blocked ^at dock)
      (modify 2 ^holding <b>)
      (remove 1)))");
  const Rule& rule = *program.rules->Find("r");
  ASSERT_EQ(rule.actions().size(), 3u);

  const auto& make = std::get<MakeAction>(rule.actions()[0]);
  EXPECT_EQ(make.relation, Sym("blocked"));
  ASSERT_EQ(make.values.size(), 1u);  // dense to arity
  EXPECT_EQ(make.values[0].constant, Value::Symbol("dock"));

  const auto& modify = std::get<ModifyAction>(rule.actions()[1]);
  EXPECT_EQ(modify.ce, 1u);  // 1-based "2" -> 0-based positive CE 1
  ASSERT_EQ(modify.assigns.size(), 1u);
  EXPECT_EQ(modify.assigns[0].first, 2u);  // ^holding
  EXPECT_EQ(modify.assigns[0].second.kind, Expr::Kind::kBinding);
  EXPECT_EQ(modify.assigns[0].second.ce, 0u);
  EXPECT_EQ(modify.assigns[0].second.field, 0u);

  EXPECT_EQ(std::get<RemoveAction>(rule.actions()[2]).ce, 0u);
}

TEST(Compiler, MakeDefaultsUnassignedFieldsToNil) {
  auto program = MustCompile(R"(
    (rule r (box ^id <b>) --> (make robot ^name r2)))");
  const auto& make =
      std::get<MakeAction>(program.rules->Find("r")->actions()[0]);
  ASSERT_EQ(make.values.size(), 3u);
  EXPECT_TRUE(make.values[1].constant.is_nil());
  EXPECT_TRUE(make.values[2].constant.is_nil());
}

TEST(Compiler, CeNumberSkipsNegatedConditions) {
  // (remove 2) must name the second *positive* CE even with a negation
  // in between.
  auto program = MustCompile(R"(
    (rule r
      (box ^id <b>)
      -(blocked ^at dock)
      (robot ^name <r>)
      -->
      (remove 2)))");
  const Rule& rule = *program.rules->Find("r");
  const auto& remove = std::get<RemoveAction>(rule.actions()[0]);
  EXPECT_EQ(remove.ce, 1u);
  EXPECT_EQ(rule.PositiveConditionIndex(remove.ce), 2u);
  EXPECT_EQ(rule.conditions()[2].relation, Sym("robot"));
}

TEST(Compiler, PriorityAndCostCarryThrough) {
  auto program = MustCompile(R"(
    (rule r :priority -3 :cost 500 (box ^id 1) --> (remove 1)))");
  EXPECT_EQ(program.rules->Find("r")->priority(), -3);
  EXPECT_EQ(program.rules->Find("r")->cost_us(), 500);
}

TEST(Compiler, FactsAreLowered) {
  auto program = MustCompile(R"(
    (make box ^id 3 ^at dock ^weight 7))");
  ASSERT_EQ(program.facts.size(), 1u);
  EXPECT_EQ(program.facts[0].relation, Sym("box"));
  EXPECT_EQ(program.facts[0].values,
            (std::vector<Value>{Value::Int(3), Value::Symbol("dock"),
                                Value::Int(7)}));
}

TEST(Compiler, LoadProgramPopulatesWorkingMemory) {
  WorkingMemory wm;
  auto rules = LoadProgram(std::string(kSchema) + R"(
    (rule r (box ^id <b>) --> (remove 1))
    (make box ^id 1 ^at a ^weight 1)
    (make box ^id 2 ^at b ^weight 2))",
                           &wm);
  ASSERT_TRUE(rules.ok()) << rules.status();
  EXPECT_EQ((*rules)->size(), 1u);
  EXPECT_EQ(wm.Count(Sym("box")), 2u);
  EXPECT_TRUE(wm.catalog().HasRelation(Sym("robot")));
}

TEST(Compiler, SecondProgramSeesExistingRelations) {
  WorkingMemory wm;
  ASSERT_TRUE(LoadProgram(kSchema, &wm).ok());
  auto rules = LoadProgram("(rule r (box ^id <b>) --> (remove 1))", &wm);
  EXPECT_TRUE(rules.ok()) << rules.status();
}

// --- errors ------------------------------------------------------------

TEST(Compiler, ErrorOnUnknownRelation) {
  Status st = CompileError("(rule r (widget ^id 1) --> (halt))");
  EXPECT_TRUE(st.IsTypeError());
  EXPECT_NE(st.message().find("unknown relation"), std::string::npos);
}

TEST(Compiler, ErrorOnUnknownAttribute) {
  Status st = CompileError("(rule r (box ^nope 1) --> (halt))");
  EXPECT_NE(st.message().find("no attribute"), std::string::npos);
}

TEST(Compiler, ErrorOnConstantTypeMismatch) {
  // ^id is int; testing it against a symbol can never match.
  EXPECT_TRUE(CompileError("(rule r (box ^id dock) --> (halt))")
                  .IsTypeError());
}

TEST(Compiler, ErrorOnUnboundVariableInPredicate) {
  Status st =
      CompileError("(rule r (box ^weight { > <w> }) --> (halt))");
  EXPECT_NE(st.message().find("before binding"), std::string::npos);
}

TEST(Compiler, ErrorOnUnboundVariableInAction) {
  Status st = CompileError(
      "(rule r (box ^id <b>) --> (make blocked ^at <nowhere>))");
  EXPECT_NE(st.message().find("unbound variable"), std::string::npos);
}

TEST(Compiler, ErrorOnNegatedBindingEscaping) {
  // <n> binds inside the negated CE; using it in the RHS is an error.
  Status st = CompileError(R"(
    (rule r
      (box ^id <b>)
      -(robot ^name <n>)
      -->
      (make blocked ^at <n>)))");
  EXPECT_NE(st.message().find("unbound variable"), std::string::npos);
}

TEST(Compiler, ErrorOnCeNumberOutOfRange) {
  EXPECT_FALSE(
      CompileProgram(std::string(kSchema) +
                     "(rule r (box ^id <b>) --> (remove 2))")
          .ok());
  EXPECT_FALSE(
      CompileProgram(std::string(kSchema) +
                     "(rule r (box ^id <b>) --> (modify 0 ^id 1))")
          .ok());
}

TEST(Compiler, ErrorOnDuplicateRuleName) {
  Status st = CompileError(R"(
    (rule twice (box ^id 1) --> (remove 1))
    (rule twice (box ^id 2) --> (remove 1)))");
  EXPECT_NE(st.message().find("already defined"), std::string::npos);
}

TEST(Compiler, ErrorOnDuplicateRelation) {
  EXPECT_FALSE(
      CompileProgram("(relation r (a int)) (relation r (b int))").ok());
}

TEST(Compiler, ErrorOnFactWithVariable) {
  EXPECT_FALSE(
      CompileProgram(std::string(kSchema) + "(make box ^id <x>)").ok());
}

TEST(Compiler, ErrorOnFactTypeMismatch) {
  EXPECT_FALSE(
      CompileProgram(std::string(kSchema) + "(make box ^id dock)").ok());
}

TEST(Compiler, ErrorOnRemoveOfNegatedCeReference) {
  // Only positive CEs are addressable: a rule with a single positive CE
  // cannot (remove 2) even though it has two CEs.
  EXPECT_FALSE(CompileProgram(std::string(kSchema) + R"(
    (rule r (box ^id <b>) -(blocked ^at dock) --> (remove 2)))")
                   .ok());
}

}  // namespace
}  // namespace dbps
