// OPS5 value disjunctions `<< c1 c2 ... >>`: lexing, parsing, compiling,
// matching (both matchers), printing, engine behaviour.

#include <gtest/gtest.h>

#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "lang/lexer.h"
#include "lang/printer.h"
#include "match/matcher.h"
#include "match/rete.h"

namespace dbps {
namespace {

TEST(Disjunction, LexerTokens) {
  auto tokens = Lex("<< red 3 >> >= <x>").ValueOrDie();
  ASSERT_GE(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].type, TokenType::kLDisj);
  EXPECT_EQ(tokens[1].type, TokenType::kSymbol);
  EXPECT_EQ(tokens[2].type, TokenType::kInt);
  EXPECT_EQ(tokens[3].type, TokenType::kRDisj);
  EXPECT_EQ(tokens[4].text, ">=");
  EXPECT_EQ(tokens[5].type, TokenType::kVariable);
}

TEST(Disjunction, CompilesToMemberTest) {
  auto program = CompileProgram(R"(
(relation light (color symbol) (lane int))
(rule go (light ^color << green yellow >> ^lane { << 1 2 >> > 0 })
  --> (remove 1))
)");
  ASSERT_TRUE(program.ok()) << program.status();
  const Condition& cond =
      program.ValueOrDie().rules->Find("go")->conditions()[0];
  ASSERT_EQ(cond.member_tests.size(), 2u);
  EXPECT_EQ(cond.member_tests[0].field, 0u);
  EXPECT_EQ(cond.member_tests[0].values,
            (std::vector<Value>{Value::Symbol("green"),
                                Value::Symbol("yellow")}));
  EXPECT_EQ(cond.member_tests[1].field, 1u);
  // The `> 0` inside the same braces is a separate constant test.
  ASSERT_EQ(cond.constant_tests.size(), 1u);
  EXPECT_EQ(cond.constant_tests[0].pred, TestPredicate::kGt);
}

TEST(Disjunction, MemberEvalSemantics) {
  MemberTest test{0, {Value::Int(1), Value::Symbol("x"), Value::Nil()}};
  EXPECT_TRUE(test.Eval(Value::Int(1)));
  EXPECT_TRUE(test.Eval(Value::Float(1.0)));  // numeric cross-type equality
  EXPECT_TRUE(test.Eval(Value::Symbol("x")));
  EXPECT_TRUE(test.Eval(Value::Nil()));
  EXPECT_FALSE(test.Eval(Value::Int(2)));
  EXPECT_FALSE(test.Eval(Value::Symbol("y")));
}

TEST(Disjunction, TypeCheckedAgainstSchema) {
  // symbol attribute vs int candidate -> compile error.
  auto program = CompileProgram(R"(
(relation light (color symbol))
(rule go (light ^color << green 3 >>) --> (remove 1))
)");
  EXPECT_TRUE(program.status().IsTypeError());
}

TEST(Disjunction, RejectsVariablesAndEmpty) {
  EXPECT_FALSE(CompileProgram(R"(
(relation r (v any))
(rule x (r ^v << <y> >>) --> (remove 1)))")
                   .ok());
  EXPECT_FALSE(CompileProgram(R"(
(relation r (v any))
(rule x (r ^v << >>) --> (remove 1)))")
                   .ok());
}

class DisjunctionMatch : public ::testing::TestWithParam<MatcherKind> {};

TEST_P(DisjunctionMatch, MatchesAnyListedValue) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation light (color symbol))
(rule go (light ^color << green yellow >>) --> (remove 1))
(make light ^color red)
(make light ^color green)
(make light ^color yellow)
(make light ^color blue)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = CreateMatcher(GetParam());
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  EXPECT_EQ(matcher->conflict_set().size(), 2u);
}

TEST_P(DisjunctionMatch, IncrementalUpdatesRespectDisjunction) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation light (color symbol))
(rule go (light ^color << green yellow >>) --> (remove 1))
(make light ^color red)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = CreateMatcher(GetParam());
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  EXPECT_EQ(matcher->conflict_set().size(), 0u);

  WmeId id = wm.Scan(Sym("light"))[0]->id();
  Delta to_green;
  to_green.Modify(id, {{0, Value::Symbol("green")}});
  auto change = wm.Apply(to_green);
  ASSERT_TRUE(change.ok());
  matcher->ApplyChange(change.ValueOrDie());
  EXPECT_EQ(matcher->conflict_set().size(), 1u);

  Delta to_blue;
  to_blue.Modify(id, {{0, Value::Symbol("blue")}});
  change = wm.Apply(to_blue);
  ASSERT_TRUE(change.ok());
  matcher->ApplyChange(change.ValueOrDie());
  EXPECT_EQ(matcher->conflict_set().size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, DisjunctionMatch,
                         ::testing::Values(MatcherKind::kRete,
                                           MatcherKind::kNaive,
                                           MatcherKind::kTreat),
                         [](const auto& info) {
                           return std::string(
                               MatcherKindToString(info.param));
                         });

TEST(Disjunction, EndToEndEngineRun) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation ticket (id int) (status symbol))
(rule close (ticket ^id <t> ^status << resolved wontfix duplicate >>)
  --> (remove 1))
(make ticket ^id 1 ^status open)
(make ticket ^id 2 ^status resolved)
(make ticket ^id 3 ^status wontfix)
(make ticket ^id 4 ^status in-progress)
(make ticket ^id 5 ^status duplicate)
)",
                           &wm)
                   .ValueOrDie();
  SingleThreadEngine engine(&wm, rules);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 3u);
  EXPECT_EQ(wm.Count(Sym("ticket")), 2u);
}

TEST(Disjunction, PrinterRoundTrips) {
  constexpr const char* kSource = R"(
(relation light (color symbol) (lane int))
(rule go (light ^color << green yellow >> ^lane <l>)
  --> (make light ^color red ^lane (+ <l> 1)) (remove 1))
)";
  auto program = CompileProgram(kSource);
  ASSERT_TRUE(program.ok()) << program.status();
  Catalog catalog;
  for (const auto& schema : program.ValueOrDie().relations) {
    ASSERT_TRUE(catalog.AddRelation(schema).ok());
  }
  auto printed =
      ProgramToSource(catalog, *program.ValueOrDie().rules);
  ASSERT_TRUE(printed.ok()) << printed.status();
  EXPECT_NE(printed.ValueOrDie().find("<<"), std::string::npos);

  auto reprogram = CompileProgram(printed.ValueOrDie());
  ASSERT_TRUE(reprogram.ok())
      << reprogram.status() << "\n" << printed.ValueOrDie();
  const Condition& cond =
      reprogram.ValueOrDie().rules->Find("go")->conditions()[0];
  ASSERT_EQ(cond.member_tests.size(), 1u);
  EXPECT_EQ(cond.member_tests[0].values.size(), 2u);
}

TEST(Disjunction, SharedAlphaMemoryKeyedByMembers) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation light (color symbol))
(rule a (light ^color << green yellow >>) --> (remove 1))
(rule b (light ^color << green yellow >>) --> (remove 1))
(rule c (light ^color << green blue >>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  ReteMatcher matcher;
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  // Rules a and b share one alpha memory; c gets its own.
  EXPECT_EQ(matcher.GetStats().alpha_memories, 2u);
}

}  // namespace
}  // namespace dbps
