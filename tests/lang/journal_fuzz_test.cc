// Round-trip fuzz for the journal line grammar: seeded random deltas
// serialize (DeltaToJournalLine) and parse back (DeltaFromJournalLine)
// to an equal Delta, and values outside the printer's limits —
// non-finite floats, exponent-range floats, non-identifier symbols —
// are rejected at serialization time rather than producing lines that
// cannot replay.

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include "dbps.h"

namespace dbps {
namespace {

Value RandomValue(Random* rng) {
  switch (rng->Uniform(5)) {
    case 0:
      return Value::Int(rng->UniformInt(-1000000, 1000000));
    case 1:
      // Exact binary fractions in a modest range: %.17g prints them
      // without exponent notation, so they are always serializable.
      return Value::Float(
          static_cast<double>(rng->UniformInt(-1000000, 1000000)) / 256.0);
    case 2: {
      std::string name = "s";
      const char alphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789-_";
      const size_t len = rng->Uniform(12);
      for (size_t i = 0; i < len; ++i) {
        name.push_back(alphabet[rng->Uniform(sizeof(alphabet) - 1)]);
      }
      return Value::Symbol(name);
    }
    case 3: {
      // Strings exercise the escaper: quotes, backslashes, newlines,
      // tabs, spaces, parens.
      std::string text;
      const char alphabet[] = "ab(){} \"\\\n\t;^<>";
      const size_t len = rng->Uniform(16);
      for (size_t i = 0; i < len; ++i) {
        text.push_back(alphabet[rng->Uniform(sizeof(alphabet) - 1)]);
      }
      return Value::String(text);
    }
    default:
      return Value::Nil();
  }
}

Delta RandomDelta(Random* rng) {
  Delta delta;
  const size_t ops = 1 + rng->Uniform(6);
  for (size_t i = 0; i < ops; ++i) {
    switch (rng->Uniform(3)) {
      case 0: {
        std::vector<Value> values;
        const size_t arity = rng->Uniform(5);
        for (size_t v = 0; v < arity; ++v) values.push_back(RandomValue(rng));
        delta.Create(Sym(rng->Uniform(2) ? "order" : "shipment"),
                     std::move(values));
        break;
      }
      case 1: {
        std::vector<std::pair<size_t, Value>> updates;
        const size_t fields = 1 + rng->Uniform(3);
        for (size_t f = 0; f < fields; ++f) {
          updates.emplace_back(rng->Uniform(8), RandomValue(rng));
        }
        delta.Modify(rng->Uniform(1000), std::move(updates));
        break;
      }
      default:
        delta.Delete(rng->Uniform(1000));
        break;
    }
  }
  if (rng->Uniform(8) == 0) delta.SetHalt();
  return delta;
}

TEST(JournalFuzzTest, RandomDeltasRoundTripExactly) {
  Random rng(20260808);
  for (int trial = 0; trial < 2000; ++trial) {
    const Delta delta = RandomDelta(&rng);
    auto line_or = DeltaToJournalLine(delta);
    ASSERT_TRUE(line_or.ok()) << "trial " << trial << ": "
                              << line_or.status();
    auto parsed_or = DeltaFromJournalLine(line_or.ValueOrDie());
    ASSERT_TRUE(parsed_or.ok())
        << "trial " << trial << " line: " << line_or.ValueOrDie()
        << " error: " << parsed_or.status();
    EXPECT_TRUE(parsed_or.ValueOrDie() == delta)
        << "trial " << trial << " diverged, line: " << line_or.ValueOrDie();
    // Second generation is a fixpoint: parse(print(x)) prints identically.
    auto again_or = DeltaToJournalLine(parsed_or.ValueOrDie());
    ASSERT_TRUE(again_or.ok());
    EXPECT_EQ(again_or.ValueOrDie(), line_or.ValueOrDie());
  }
}

TEST(JournalFuzzTest, NonFiniteFloatsAreRejectedNotEmitted) {
  for (double d : {std::numeric_limits<double>::quiet_NaN(),
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}) {
    Delta delta;
    delta.Create(Sym("order"), {Value::Float(d)});
    EXPECT_FALSE(DeltaToJournalLine(delta).ok()) << d;
  }
}

TEST(JournalFuzzTest, ExponentRangeFloatsAreRejected) {
  // %.17g would need exponent notation, which the rule language cannot
  // read back — serialization must refuse, not emit an unreplayable line.
  for (double d : {1e30, -3.5e-12}) {
    Delta delta;
    delta.Create(Sym("order"), {Value::Float(d)});
    EXPECT_FALSE(DeltaToJournalLine(delta).ok()) << d;
  }
}

TEST(JournalFuzzTest, NonIdentifierSymbolsAreRejected) {
  for (const char* name : {"has space", "", "paren(", "\"quoted\""}) {
    Delta delta;
    delta.Create(Sym("order"), {Value::Symbol(name)});
    EXPECT_FALSE(DeltaToJournalLine(delta).ok()) << "'" << name << "'";
  }
}

TEST(JournalFuzzTest, NilSymbolCollapsesToNilValue) {
  // "nil" is the nil literal, not a symbol — the parser maps it back to
  // Value::Nil(), so a symbol spelled "nil" cannot round-trip as a
  // symbol. The generator avoids it; this pins the behavior.
  Delta delta;
  delta.Create(Sym("order"), {Value::Nil()});
  auto line_or = DeltaToJournalLine(delta);
  ASSERT_TRUE(line_or.ok());
  auto parsed_or = DeltaFromJournalLine(line_or.ValueOrDie());
  ASSERT_TRUE(parsed_or.ok());
  EXPECT_TRUE(parsed_or.ValueOrDie() == delta);
}

}  // namespace
}  // namespace dbps
