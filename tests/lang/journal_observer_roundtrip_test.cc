// Journal round trip through EngineOptions::observer: every engine's
// commit stream, captured as journal lines by a JournalFeed observer,
// must replay against the initial working memory to the exact final
// database — single-thread, static-partition, and parallel under both
// lock protocols and both abort policies.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dbps.h"

namespace dbps {
namespace {

constexpr const char* kProgram = R"(
(relation counter (name symbol) (value int) (limit int))
(relation log (name symbol) (final int))

(rule bump
  (counter ^name <n> ^value <v> ^limit { > <v> })
  -->
  (modify 1 ^value (+ <v> 1)))

(rule finish :priority 5
  (counter ^name <n> ^value <v> ^limit <v>)
  -->
  (make log ^name <n> ^final <v>)
  (remove 1))

(make counter ^name a ^value 0 ^limit 5)
(make counter ^name b ^value 2 ^limit 8)
(make counter ^name c ^value 1 ^limit 4)
)";

/// Relation-order-insensitive fingerprint: every live tuple's string,
/// sorted. Two working memories with equal fingerprints hold the same
/// database state.
std::vector<std::string> Fingerprint(const WorkingMemory& wm) {
  std::vector<std::string> out;
  for (SymbolId relation : wm.catalog().relation_names()) {
    for (const WmePtr& wme : wm.Scan(relation)) {
      out.push_back(wme->ToString());
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

void ExpectJournalRoundTrip(const JournalFeed& feed,
                            const WorkingMemory& final_wm) {
  EXPECT_GT(feed.size(), 0u);
  EXPECT_EQ(feed.serialize_errors(), 0u);
  WorkingMemory replayed;
  ASSERT_TRUE(LoadProgram(kProgram, &replayed).ok());
  ASSERT_TRUE(ReplayJournal(feed.TextFrom(0), &replayed).ok());
  EXPECT_EQ(Fingerprint(replayed), Fingerprint(final_wm));
}

TEST(JournalObserverRoundTripTest, SingleThreadEngine) {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  JournalFeed feed;
  EngineOptions options;
  options.observer = feed.MakeObserver();
  SingleThreadEngine engine(&wm, rules, options);
  auto result = engine.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(feed.size(), result.ValueOrDie().log.size());
  ExpectJournalRoundTrip(feed, wm);
}

TEST(JournalObserverRoundTripTest, StaticPartitionEngine) {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  JournalFeed feed;
  StaticPartitionOptions options;
  options.num_workers = 4;
  options.base.observer = feed.MakeObserver();
  StaticPartitionEngine engine(&wm, rules, options);
  auto result = engine.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(feed.size(), result.ValueOrDie().log.size());
  ExpectJournalRoundTrip(feed, wm);
}

class ParallelJournalRoundTripTest
    : public ::testing::TestWithParam<std::pair<LockProtocol, AbortPolicy>> {
};

TEST_P(ParallelJournalRoundTripTest, ObserverJournalReplays) {
  auto [protocol, abort_policy] = GetParam();
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  JournalFeed feed;
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = protocol;
  options.abort_policy = abort_policy;
  options.base.observer = feed.MakeObserver();
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run();
  ASSERT_TRUE(result.ok()) << result.status();
  // Commit events are delivered under the commit lock, so the feed holds
  // exactly the committed deltas in commit order.
  ASSERT_EQ(feed.size(), result.ValueOrDie().log.size());
  ExpectJournalRoundTrip(feed, wm);
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, ParallelJournalRoundTripTest,
    ::testing::Values(
        std::make_pair(LockProtocol::kTwoPhase, AbortPolicy::kAbort),
        std::make_pair(LockProtocol::kRcRaWa, AbortPolicy::kAbort),
        std::make_pair(LockProtocol::kRcRaWa, AbortPolicy::kRevalidate)),
    [](const auto& info) {
      std::string name = info.param.first == LockProtocol::kTwoPhase
                             ? "TwoPhase"
                             : "RcRaWa";
      name += info.param.second == AbortPolicy::kAbort ? "Abort"
                                                       : "Revalidate";
      return name;
    });

}  // namespace
}  // namespace dbps
