// Delta journal: serialization round-trips, recovery replay, and the
// snapshot + log story end-to-end.

#include <gtest/gtest.h>

#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "lang/journal.h"
#include "lang/printer.h"

namespace dbps {
namespace {

Delta SampleDelta() {
  Delta delta;
  delta.Create(Sym("jrnl-box"), {Value::Int(1), Value::Symbol("dock"),
                                 Value::Float(2.5), Value::Nil(),
                                 Value::String("a \"b\"")});
  delta.Modify(7, {{0, Value::Int(9)}, {2, Value::Symbol("red")}});
  delta.Delete(3);
  return delta;
}

TEST(Journal, LineRoundTrip) {
  Delta delta = SampleDelta();
  auto line = DeltaToJournalLine(delta);
  ASSERT_TRUE(line.ok()) << line.status();
  auto parsed = DeltaFromJournalLine(line.ValueOrDie());
  ASSERT_TRUE(parsed.ok()) << parsed.status() << "\n" << line.ValueOrDie();
  EXPECT_TRUE(parsed.ValueOrDie() == delta) << line.ValueOrDie();
}

TEST(Journal, HaltRoundTrips) {
  Delta delta;
  delta.Delete(1);
  delta.SetHalt();
  auto line = DeltaToJournalLine(delta).ValueOrDie();
  EXPECT_NE(line.find("(halt)"), std::string::npos);
  EXPECT_TRUE(DeltaFromJournalLine(line).ValueOrDie() == delta);
}

TEST(Journal, EmptyDeltaRoundTrips) {
  auto line = DeltaToJournalLine(Delta{}).ValueOrDie();
  EXPECT_EQ(line, "(delta)");
  EXPECT_TRUE(DeltaFromJournalLine(line).ValueOrDie() == Delta{});
}

TEST(Journal, MalformedLinesRejected) {
  EXPECT_FALSE(DeltaFromJournalLine("").ok());
  EXPECT_FALSE(DeltaFromJournalLine("(delta").ok());
  EXPECT_FALSE(DeltaFromJournalLine("(other)").ok());
  EXPECT_FALSE(DeltaFromJournalLine("(delta (explode 1))").ok());
  EXPECT_FALSE(DeltaFromJournalLine("(delta) junk").ok());
  EXPECT_FALSE(DeltaFromJournalLine("(delta (modify x))").ok());
}

TEST(Journal, ReplayReproducesDatabaseExactly) {
  // Run an engine, journal its committed deltas, replay the journal on a
  // copy of the initial state: identical contents, ids, and tags.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation acct (id int) (v int))
(relation audit (acct int) (v int))
(rule spend
  (acct ^id <a> ^v { > 0 } ^v <v>)
  -->
  (modify 1 ^v (- <v> 1))
  (make audit ^acct <a> ^v <v>))
(make acct ^id 1 ^v 3)
(make acct ^id 2 ^v 2)
)",
                           &wm)
                   .ValueOrDie();
  auto initial = wm.Clone();

  SingleThreadEngine engine(&wm, rules);
  auto result = engine.Run().ValueOrDie();
  ASSERT_EQ(result.stats.firings, 5u);

  std::vector<Delta> deltas;
  for (const auto& record : result.log) deltas.push_back(record.delta);
  auto journal = DeltasToJournal(deltas);
  ASSERT_TRUE(journal.ok()) << journal.status();

  auto recovered = initial->Clone();
  ASSERT_TRUE(ReplayJournal(journal.ValueOrDie(), recovered.get()).ok());

  // Exact equality, including identities.
  for (SymbolId relation : {Sym("acct"), Sym("audit")}) {
    auto live = wm.Scan(relation);
    ASSERT_EQ(live.size(), recovered->Count(relation));
    for (const auto& wme : live) {
      WmePtr twin = recovered->Get(wme->id());
      ASSERT_NE(twin, nullptr);
      EXPECT_EQ(twin->tag(), wme->tag());
      EXPECT_EQ(twin->values(), wme->values());
    }
  }
}

TEST(Journal, ReplayToleratesCommentsAndBlankLines) {
  WorkingMemory wm;
  ASSERT_TRUE(wm.CreateRelation("jt", {{"v", AttrType::kInt}}).ok());
  std::string journal =
      "; a comment\n\n(delta (make jt 1))\n   \n(delta (make jt 2))\n";
  ASSERT_TRUE(ReplayJournal(journal, &wm).ok());
  EXPECT_EQ(wm.Count(Sym("jt")), 2u);
}

TEST(Journal, ReplayStopsOnInapplicableDelta) {
  WorkingMemory wm;
  ASSERT_TRUE(wm.CreateRelation("jt2", {{"v", AttrType::kInt}}).ok());
  Status st = ReplayJournal("(delta (delete 99))", &wm);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("line 1"), std::string::npos);
}

TEST(Journal, SnapshotPlusJournalRecovery) {
  // Full recovery story: snapshot at time T, then journal of later
  // deltas; load snapshot + replay journal == final state (contents; ids
  // are fresh after a snapshot load, so compare values).
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (k symbol) (v int))
(rule grow (item ^k <k> ^v { < 3 } ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make item ^k a ^v 0)
(make item ^k b ^v 1)
)",
                           &wm)
                   .ValueOrDie();

  // Phase 1: run to quiescence, snapshot.
  SingleThreadEngine first(&wm, rules);
  ASSERT_TRUE(first.Run().ok());
  auto snapshot = SnapshotToSource(wm).ValueOrDie();

  // Phase 2: more mutations, journaled manually.
  std::vector<Delta> tail;
  {
    Delta delta;
    delta.Create(Sym("item"), {Value::Symbol("c"), Value::Int(9)});
    tail.push_back(delta);
  }
  for (const auto& delta : tail) ASSERT_TRUE(wm.Apply(delta).ok());
  auto journal = DeltasToJournal(tail).ValueOrDie();

  // Recovery: snapshot + journal.
  WorkingMemory recovered;
  ASSERT_TRUE(LoadProgram(snapshot, &recovered).ok());
  ASSERT_TRUE(ReplayJournal(journal, &recovered).ok());

  ASSERT_EQ(recovered.Count(Sym("item")), wm.Count(Sym("item")));
  // Every (k, v) pair present in both.
  for (const auto& wme : wm.Scan(Sym("item"))) {
    bool found = false;
    for (const auto& twin : recovered.Scan(Sym("item"))) {
      if (twin->values() == wme->values()) found = true;
    }
    EXPECT_TRUE(found) << wme->ToString();
  }
}

}  // namespace
}  // namespace dbps
