#include <gtest/gtest.h>

#include "lang/lexer.h"

namespace dbps {
namespace {

std::vector<Token> MustLex(std::string_view src) {
  auto tokens = Lex(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  return tokens.ValueOrDie();
}

std::vector<TokenType> Types(const std::vector<Token>& tokens) {
  std::vector<TokenType> out;
  for (const auto& t : tokens) out.push_back(t.type);
  return out;
}

TEST(Lexer, EmptyInputYieldsEof) {
  auto tokens = MustLex("");
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].type, TokenType::kEof);
}

TEST(Lexer, Parens) {
  auto tokens = MustLex("(()){}");
  EXPECT_EQ(Types(tokens),
            (std::vector<TokenType>{
                TokenType::kLParen, TokenType::kLParen, TokenType::kRParen,
                TokenType::kRParen, TokenType::kLBrace, TokenType::kRBrace,
                TokenType::kEof}));
}

TEST(Lexer, SymbolsAndIdentChars) {
  auto tokens = MustLex("foo foo-bar under_score q?mark star*");
  ASSERT_EQ(tokens.size(), 6u);  // five symbols + eof
  EXPECT_EQ(tokens[0].text, "foo");
  EXPECT_EQ(tokens[1].text, "foo-bar");
  EXPECT_EQ(tokens[2].text, "under_score");
  EXPECT_EQ(tokens[3].text, "q?mark");
  EXPECT_EQ(tokens[3].type, TokenType::kSymbol);
}

TEST(Lexer, Numbers) {
  auto tokens = MustLex("42 -7 3.25 -0.5 0");
  ASSERT_EQ(tokens.size(), 6u);
  EXPECT_EQ(tokens[0].type, TokenType::kInt);
  EXPECT_EQ(tokens[0].int_value, 42);
  EXPECT_EQ(tokens[1].int_value, -7);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_DOUBLE_EQ(tokens[2].float_value, 3.25);
  EXPECT_DOUBLE_EQ(tokens[3].float_value, -0.5);
  EXPECT_EQ(tokens[4].int_value, 0);
}

TEST(Lexer, AttributesAndVariablesAndKeywords) {
  auto tokens = MustLex("^weight <x> :priority");
  ASSERT_EQ(tokens.size(), 4u);
  EXPECT_EQ(tokens[0].type, TokenType::kAttribute);
  EXPECT_EQ(tokens[0].text, "weight");
  EXPECT_EQ(tokens[1].type, TokenType::kVariable);
  EXPECT_EQ(tokens[1].text, "x");
  EXPECT_EQ(tokens[2].type, TokenType::kKeyword);
  EXPECT_EQ(tokens[2].text, "priority");
}

TEST(Lexer, ComparisonOperators) {
  auto tokens = MustLex("= <> < <= > >=");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0].text, "=");
  EXPECT_EQ(tokens[1].text, "<>");
  EXPECT_EQ(tokens[2].text, "<");
  EXPECT_EQ(tokens[3].text, "<=");
  EXPECT_EQ(tokens[4].text, ">");
  EXPECT_EQ(tokens[5].text, ">=");
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(tokens[i].type, TokenType::kSymbol);
  }
}

TEST(Lexer, MinusDisambiguation) {
  // -->  arrow; -( negation; -5 number; bare - symbol.
  auto tokens = MustLex("--> -( -5 - x");
  EXPECT_EQ(tokens[0].type, TokenType::kArrow);
  EXPECT_EQ(tokens[1].type, TokenType::kNegation);
  EXPECT_EQ(tokens[2].type, TokenType::kLParen);
  EXPECT_EQ(tokens[3].type, TokenType::kInt);
  EXPECT_EQ(tokens[3].int_value, -5);
  EXPECT_EQ(tokens[4].type, TokenType::kSymbol);
  EXPECT_EQ(tokens[4].text, "-");
}

TEST(Lexer, VariableVsLessThan) {
  auto tokens = MustLex("<abc> < <x1>");
  EXPECT_EQ(tokens[0].type, TokenType::kVariable);
  EXPECT_EQ(tokens[0].text, "abc");
  EXPECT_EQ(tokens[1].type, TokenType::kSymbol);
  EXPECT_EQ(tokens[1].text, "<");
  EXPECT_EQ(tokens[2].type, TokenType::kVariable);
}

TEST(Lexer, Strings) {
  auto tokens = MustLex(R"("hello" "a\"b" "tab\tnl\n")");
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "hello");
  EXPECT_EQ(tokens[1].text, "a\"b");
  EXPECT_EQ(tokens[2].text, "tab\tnl\n");
}

TEST(Lexer, CommentsAreSkipped) {
  auto tokens = MustLex("a ; comment to end\nb ;; another\n");
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].text, "a");
  EXPECT_EQ(tokens[1].text, "b");
}

TEST(Lexer, TracksLineAndColumn) {
  auto tokens = MustLex("a\n  bb\n   c");
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[0].col, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].col, 3);
  EXPECT_EQ(tokens[2].line, 3);
  EXPECT_EQ(tokens[2].col, 4);
}

TEST(Lexer, ArithmeticOperators) {
  auto tokens = MustLex("+ * / mod");
  EXPECT_EQ(tokens[0].text, "+");
  EXPECT_EQ(tokens[1].text, "*");
  EXPECT_EQ(tokens[2].text, "/");
  EXPECT_EQ(tokens[3].text, "mod");
}

TEST(Lexer, ErrorOnUnterminatedString) {
  EXPECT_TRUE(Lex("\"never closed").status().IsParseError());
}

TEST(Lexer, ErrorOnUnterminatedVariable) {
  EXPECT_TRUE(Lex("<broken").status().IsParseError());
}

TEST(Lexer, ErrorOnBadEscape) {
  EXPECT_TRUE(Lex(R"("bad\q")").status().IsParseError());
}

TEST(Lexer, ErrorOnStrayCharacter) {
  EXPECT_TRUE(Lex("@").status().IsParseError());
  EXPECT_TRUE(Lex("#").status().IsParseError());
}

TEST(Lexer, ErrorOnBareCaret) {
  EXPECT_TRUE(Lex("^ foo").status().IsParseError());
  EXPECT_TRUE(Lex("^1bad").status().IsParseError());
}

}  // namespace
}  // namespace dbps
