#include <gtest/gtest.h>

#include "lang/parser.h"

namespace dbps {
namespace {

AstProgram MustParse(std::string_view src) {
  auto program = Parse(src);
  EXPECT_TRUE(program.ok()) << program.status();
  return std::move(program).ValueOrDie();
}

TEST(Parser, RelationDecl) {
  auto program = MustParse(
      "(relation box (id int) (at symbol) (weight number) (note) )");
  ASSERT_EQ(program.relations.size(), 1u);
  const auto& decl = program.relations[0];
  EXPECT_EQ(decl.name, "box");
  ASSERT_EQ(decl.attrs.size(), 4u);
  EXPECT_EQ(decl.attrs[0], std::make_pair(std::string("id"), AttrType::kInt));
  EXPECT_EQ(decl.attrs[1].second, AttrType::kSymbol);
  EXPECT_EQ(decl.attrs[2].second, AttrType::kNumber);
  EXPECT_EQ(decl.attrs[3].second, AttrType::kAny);  // untyped defaults to any
}

TEST(Parser, RuleWithProperties) {
  auto program = MustParse(R"(
    (rule r1 :priority 7 :cost 250
      (box ^id 1)
      -->
      (halt)))");
  ASSERT_EQ(program.rules.size(), 1u);
  const AstRule& rule = program.rules[0];
  EXPECT_EQ(rule.name, "r1");
  EXPECT_EQ(rule.priority, 7);
  EXPECT_EQ(rule.cost_us, 250);
  ASSERT_EQ(rule.lhs.size(), 1u);
  ASSERT_EQ(rule.rhs.size(), 1u);
  EXPECT_TRUE(std::holds_alternative<AstHaltAction>(rule.rhs[0]));
}

TEST(Parser, ConditionElementTests) {
  auto program = MustParse(R"(
    (rule r
      (box ^id <b> ^at dock ^weight { > 10 <= <max> } ^note { <> nil })
      -->
      (remove 1)))");
  const auto& ce = program.rules[0].lhs[0];
  EXPECT_FALSE(ce.negated);
  EXPECT_EQ(ce.relation, "box");
  ASSERT_EQ(ce.attr_tests.size(), 4u);

  // ^id <b>: bare variable = implicit equality binding.
  EXPECT_EQ(ce.attr_tests[0].attr, "id");
  ASSERT_EQ(ce.attr_tests[0].tests.size(), 1u);
  EXPECT_EQ(ce.attr_tests[0].tests[0].pred, TestPredicate::kEq);
  EXPECT_EQ(ce.attr_tests[0].tests[0].operand.kind,
            AstOperand::Kind::kVariable);
  EXPECT_EQ(ce.attr_tests[0].tests[0].operand.var_name, "b");

  // ^at dock: constant symbol.
  EXPECT_EQ(ce.attr_tests[1].tests[0].operand.constant,
            Value::Symbol("dock"));

  // ^weight { > 10 <= <max> }: two-test conjunction.
  ASSERT_EQ(ce.attr_tests[2].tests.size(), 2u);
  EXPECT_EQ(ce.attr_tests[2].tests[0].pred, TestPredicate::kGt);
  EXPECT_EQ(ce.attr_tests[2].tests[0].operand.constant, Value::Int(10));
  EXPECT_EQ(ce.attr_tests[2].tests[1].pred, TestPredicate::kLe);
  EXPECT_EQ(ce.attr_tests[2].tests[1].operand.var_name, "max");

  // ^note { <> nil }.
  EXPECT_EQ(ce.attr_tests[3].tests[0].pred, TestPredicate::kNe);
  EXPECT_TRUE(ce.attr_tests[3].tests[0].operand.constant.is_nil());
}

TEST(Parser, NegatedConditionElement) {
  auto program = MustParse(R"(
    (rule r
      (box ^id <b>)
      -(blocked ^box <b>)
      -->
      (remove 1)))");
  ASSERT_EQ(program.rules[0].lhs.size(), 2u);
  EXPECT_FALSE(program.rules[0].lhs[0].negated);
  EXPECT_TRUE(program.rules[0].lhs[1].negated);
  EXPECT_EQ(program.rules[0].lhs[1].relation, "blocked");
}

TEST(Parser, Actions) {
  auto program = MustParse(R"(
    (rule r
      (box ^id <b> ^weight <w>)
      -->
      (make event ^kind pickup ^box <b> ^score (+ (* <w> 2) 1))
      (modify 1 ^weight (- <w> 1))
      (remove 1)
      (halt)))");
  const auto& rhs = program.rules[0].rhs;
  ASSERT_EQ(rhs.size(), 4u);

  const auto& make = std::get<AstMakeAction>(rhs[0]);
  EXPECT_EQ(make.relation, "event");
  ASSERT_EQ(make.assigns.size(), 3u);
  EXPECT_EQ(make.assigns[2].attr, "score");
  const AstExpr& score = *make.assigns[2].expr;
  EXPECT_EQ(score.kind, AstExpr::Kind::kBinary);
  EXPECT_EQ(score.op, BinOp::kAdd);
  EXPECT_EQ(score.lhs->kind, AstExpr::Kind::kBinary);
  EXPECT_EQ(score.lhs->op, BinOp::kMul);
  EXPECT_EQ(score.lhs->lhs->var_name, "w");
  EXPECT_EQ(score.rhs->constant, Value::Int(1));

  const auto& modify = std::get<AstModifyAction>(rhs[1]);
  EXPECT_EQ(modify.ce_number, 1);
  ASSERT_EQ(modify.assigns.size(), 1u);
  EXPECT_EQ(modify.assigns[0].expr->op, BinOp::kSub);

  EXPECT_EQ(std::get<AstRemoveAction>(rhs[2]).ce_number, 1);
}

TEST(Parser, TopLevelFacts) {
  auto program = MustParse(R"(
    (make box ^id 1 ^at dock)
    (make box ^id 2))");
  ASSERT_EQ(program.facts.size(), 2u);
  EXPECT_EQ(program.facts[0].relation, "box");
  EXPECT_EQ(program.facts[0].assigns.size(), 2u);
}

TEST(Parser, ModOperator) {
  auto program = MustParse(R"(
    (rule r (c ^v <v>) --> (modify 1 ^v (mod <v> 3))))");
  const auto& modify = std::get<AstModifyAction>(program.rules[0].rhs[0]);
  EXPECT_EQ(modify.assigns[0].expr->op, BinOp::kMod);
}

// --- errors ------------------------------------------------------------

TEST(Parser, ErrorOnUnknownTopLevelForm) {
  EXPECT_TRUE(Parse("(frobnicate x)").status().IsParseError());
}

TEST(Parser, ErrorOnRuleWithoutArrow) {
  EXPECT_TRUE(Parse("(rule r (box ^id 1) (halt))").status().IsParseError());
}

TEST(Parser, ErrorOnRuleWithoutConditions) {
  EXPECT_TRUE(Parse("(rule r --> (halt))").status().IsParseError());
}

TEST(Parser, ErrorOnEmptyRestriction) {
  EXPECT_TRUE(
      Parse("(rule r (box ^w { }) --> (halt))").status().IsParseError());
}

TEST(Parser, ErrorOnBadAttrType) {
  EXPECT_TRUE(
      Parse("(relation r (a widget))").status().IsParseError());
}

TEST(Parser, ErrorOnUnknownAction) {
  EXPECT_TRUE(Parse("(rule r (b ^x 1) --> (explode 1))")
                  .status()
                  .IsParseError());
}

TEST(Parser, ErrorOnUnknownProperty) {
  EXPECT_TRUE(Parse("(rule r :shiny 1 (b ^x 1) --> (halt))")
                  .status()
                  .IsParseError());
}

TEST(Parser, ErrorOnModifyWithoutAssigns) {
  EXPECT_TRUE(
      Parse("(rule r (b ^x 1) --> (modify 1))").status().IsParseError());
}

TEST(Parser, ErrorOnBadExprOperator) {
  EXPECT_TRUE(Parse("(rule r (b ^x <v>) --> (make b ^x (pow <v> 2)))")
                  .status()
                  .IsParseError());
}

TEST(Parser, ErrorOnTruncatedInput) {
  EXPECT_TRUE(Parse("(rule r (b ^x 1) -->").status().IsParseError());
  EXPECT_TRUE(Parse("(relation").status().IsParseError());
}

}  // namespace
}  // namespace dbps
