// Printer tests including the compile → print → recompile round-trip
// property over the random program generator.

#include <gtest/gtest.h>

#include <algorithm>

#include "lang/compiler.h"
#include "lang/printer.h"
#include "testing/workloads.h"

namespace dbps {
namespace {

// --- ValueToSource ---------------------------------------------------

TEST(ValueToSource, Literals) {
  EXPECT_EQ(ValueToSource(Value::Nil()).ValueOrDie(), "nil");
  EXPECT_EQ(ValueToSource(Value::Int(-42)).ValueOrDie(), "-42");
  EXPECT_EQ(ValueToSource(Value::Float(2.5)).ValueOrDie(), "2.5");
  EXPECT_EQ(ValueToSource(Value::Float(3.0)).ValueOrDie(), "3.0");
  EXPECT_EQ(ValueToSource(Value::Symbol("red")).ValueOrDie(), "red");
  EXPECT_EQ(ValueToSource(Value::String("a\"b\n")).ValueOrDie(),
            "\"a\\\"b\\n\"");
}

TEST(ValueToSource, UnprintableValuesRejected) {
  EXPECT_TRUE(ValueToSource(Value::Float(1e100)).status().IsUnimplemented());
  EXPECT_TRUE(ValueToSource(Value::Symbol("has space"))
                  .status()
                  .IsUnimplemented());
}

TEST(ValueToSource, FloatRoundTripsExactly) {
  for (double d : {0.1, 1.0 / 3.0, 123456.789, -0.000125}) {
    auto source = ValueToSource(Value::Float(d));
    ASSERT_TRUE(source.ok()) << source.status();
    // Reparse through the compiler path by embedding in a fact.
    WorkingMemory wm;
    auto rules = LoadProgram(
        "(relation f (v float))\n(make f ^v " + source.ValueOrDie() + ")",
        &wm);
    ASSERT_TRUE(rules.ok()) << rules.status();
    EXPECT_EQ(wm.Scan(Sym("f"))[0]->value(0).AsFloat(), d);
  }
}

// --- Schema / snapshot ---------------------------------------------------

TEST(Printer, SchemaToSource) {
  RelationSchema schema(Sym("box"), {AttrDef{Sym("id"), AttrType::kInt},
                                     AttrDef{Sym("tag"), AttrType::kAny}});
  EXPECT_EQ(SchemaToSource(schema), "(relation box (id int) (tag any))\n");
}

TEST(Printer, SnapshotRoundTripPreservesContent) {
  WorkingMemory wm;
  ASSERT_TRUE(LoadProgram(R"(
(relation item (id int) (name symbol) (score float) (note string))
(make item ^id 1 ^name alpha ^score 1.5 ^note "first")
(make item ^id 2 ^name beta)
)",
                          &wm)
                  .ok());
  // Mutate a bit so the snapshot isn't just the original text.
  Delta delta;
  delta.Modify(wm.Scan(Sym("item"))[0]->id(), {{2, Value::Float(9.25)}});
  ASSERT_TRUE(wm.Apply(delta).ok());

  auto source = SnapshotToSource(wm);
  ASSERT_TRUE(source.ok()) << source.status();

  WorkingMemory restored;
  auto rules = LoadProgram(source.ValueOrDie(), &restored);
  ASSERT_TRUE(rules.ok()) << rules.status() << "\n" << source.ValueOrDie();

  // Same relations, same multiset of tuples.
  ASSERT_EQ(restored.Count(Sym("item")), 2u);
  auto tuples_of = [](const WorkingMemory& w) {
    std::vector<std::string> out;
    for (const auto& wme : w.Scan(Sym("item"))) {
      std::string row;
      for (const auto& v : wme->values()) row += v.ToString() + "|";
      out.push_back(row);
    }
    std::sort(out.begin(), out.end());
    return out;
  };
  EXPECT_EQ(tuples_of(wm), tuples_of(restored));
}

// --- Rule round-trip -------------------------------------------------------

/// Canonical, order-insensitive description of a compiled rule.
std::string Canonical(const Rule& rule) {
  std::string out = "P" + std::to_string(rule.priority()) + "C" +
                    std::to_string(rule.cost_us()) + ";";
  for (const auto& cond : rule.conditions()) {
    std::vector<std::string> tests;
    for (const auto& t : cond.constant_tests) {
      tests.push_back("c" + std::to_string(t.field) +
                      TestPredicateToString(t.pred) + t.value.ToString());
    }
    for (const auto& t : cond.intra_tests) {
      tests.push_back("i" + std::to_string(t.field) +
                      TestPredicateToString(t.pred) +
                      std::to_string(t.other_field));
    }
    for (const auto& t : cond.join_tests) {
      tests.push_back("j" + std::to_string(t.field) +
                      TestPredicateToString(t.pred) +
                      std::to_string(t.other_ce) + "." +
                      std::to_string(t.other_field));
    }
    std::sort(tests.begin(), tests.end());
    out += (cond.negated ? "-" : "+") + SymName(cond.relation) + "[";
    for (const auto& t : tests) out += t + ",";
    out += "];";
  }
  // Actions are order-significant; reuse the rule printer's stable form
  // via Rule::ToString's action section. Simpler: append ToString of
  // each action through the existing Rule::ToString (positions only).
  std::string full = rule.ToString();
  out += full.substr(full.find("-->"));
  return out;
}

class RoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RoundTrip, CompilePrintRecompileIsStable) {
  testing::RandomProgramBuilder builder(GetParam());
  std::string source = builder.Build();
  auto program = CompileProgram(source);
  ASSERT_TRUE(program.ok()) << program.status() << "\n" << source;

  Catalog catalog;
  for (const auto& schema : program.ValueOrDie().relations) {
    ASSERT_TRUE(catalog.AddRelation(schema).ok());
  }
  auto printed =
      ProgramToSource(catalog, *program.ValueOrDie().rules);
  ASSERT_TRUE(printed.ok()) << printed.status();

  auto reprogram = CompileProgram(printed.ValueOrDie());
  ASSERT_TRUE(reprogram.ok())
      << reprogram.status() << "\nprinted:\n" << printed.ValueOrDie();

  const auto& original_rules = program.ValueOrDie().rules->rules();
  const auto& reparsed_rules = reprogram.ValueOrDie().rules->rules();
  ASSERT_EQ(original_rules.size(), reparsed_rules.size());
  for (size_t i = 0; i < original_rules.size(); ++i) {
    EXPECT_EQ(Canonical(*original_rules[i]), Canonical(*reparsed_rules[i]))
        << "rule " << original_rules[i]->name() << "\nprinted:\n"
        << printed.ValueOrDie();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTrip,
                         ::testing::Range<uint64_t>(1, 26));

TEST(RoundTrip, HandWrittenRuleWithAllFeatures) {
  constexpr const char* kSource = R"(
(relation box (id int) (at symbol) (weight int))
(relation robot (name symbol) (at symbol) (holding int))
(relation blocked (at symbol))
(rule fancy :priority 3 :cost 42
  (box ^id <b> ^at <w> ^weight { > 5 <= 50 })
  (robot ^at <w> ^holding { <> <b> } ^name <r>)
  -(blocked ^at <w>)
  -->
  (modify 2 ^holding <b>)
  (make blocked ^at <w>)
  (remove 1)
  (halt))
)";
  auto program = CompileProgram(kSource);
  ASSERT_TRUE(program.ok()) << program.status();
  Catalog catalog;
  for (const auto& schema : program.ValueOrDie().relations) {
    ASSERT_TRUE(catalog.AddRelation(schema).ok());
  }
  RulePtr rule = program.ValueOrDie().rules->Find("fancy");
  auto printed = RuleToSource(*rule, catalog);
  ASSERT_TRUE(printed.ok()) << printed.status();

  std::string full_source;
  for (const auto& schema : program.ValueOrDie().relations) {
    full_source += SchemaToSource(schema);
  }
  full_source += printed.ValueOrDie();
  auto reprogram = CompileProgram(full_source);
  ASSERT_TRUE(reprogram.ok())
      << reprogram.status() << "\nprinted:\n" << printed.ValueOrDie();
  EXPECT_EQ(Canonical(*rule),
            Canonical(*reprogram.ValueOrDie().rules->Find("fancy")));
}

TEST(RoundTrip, IntraCeBindingOrderIndependence) {
  // Binding occurs at a textually later attribute than its use once
  // printed in field order; the printer must reorder so the reparse
  // still compiles.
  constexpr const char* kSource = R"(
(relation pair (a int) (b int))
(rule eq (pair ^b <x> ^a { = <x> }) --> (remove 1))
)";
  auto program = CompileProgram(kSource);
  ASSERT_TRUE(program.ok()) << program.status();
  Catalog catalog;
  for (const auto& schema : program.ValueOrDie().relations) {
    ASSERT_TRUE(catalog.AddRelation(schema).ok());
  }
  RulePtr rule = program.ValueOrDie().rules->Find("eq");
  auto printed = RuleToSource(*rule, catalog);
  ASSERT_TRUE(printed.ok()) << printed.status();
  auto reprogram = CompileProgram(
      "(relation pair (a int) (b int))\n" + printed.ValueOrDie());
  ASSERT_TRUE(reprogram.ok())
      << reprogram.status() << "\nprinted:\n" << printed.ValueOrDie();
  EXPECT_EQ(Canonical(*rule),
            Canonical(*reprogram.ValueOrDie().rules->Find("eq")));
}

}  // namespace
}  // namespace dbps
