#include <gtest/gtest.h>

#include "lang/compiler.h"
#include "lang/query.h"

namespace dbps {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto rules = LoadProgram(R"(
(relation emp  (name symbol) (dept symbol) (salary int))
(relation dept (name symbol) (head symbol))
(relation frozen (dept symbol))
(make emp ^name ann   ^dept eng   ^salary 120)
(make emp ^name bob   ^dept eng   ^salary 95)
(make emp ^name carol ^dept sales ^salary 80)
(make emp ^name dan   ^dept sales ^salary 110)
(make dept ^name eng   ^head ann)
(make dept ^name sales ^head dan)
(make frozen ^dept sales)
)",
                             &wm_);
    ASSERT_TRUE(rules.ok()) << rules.status();
  }

  WorkingMemory wm_;
};

TEST_F(QueryTest, SimpleSelection) {
  auto rows = ExecuteQuery(wm_, "(emp ^salary { > 100 })");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);  // ann, dan
  for (const auto& row : rows.ValueOrDie()) {
    EXPECT_GT(row[0]->value(2).AsInt(), 100);
  }
}

TEST_F(QueryTest, JoinAcrossRelations) {
  // Department heads and their salaries.
  auto rows = ExecuteQuery(wm_, R"(
(dept ^name <d> ^head <h>)
(emp ^name <h> ^dept <d> ^salary <s>))");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);
  for (const auto& row : rows.ValueOrDie()) {
    EXPECT_EQ(row.size(), 2u);
    EXPECT_EQ(row[0]->value(1), row[1]->value(0));  // head == name
  }
}

TEST_F(QueryTest, NegationFiltersRows) {
  // Employees in departments that are not frozen.
  auto rows = ExecuteQuery(wm_, R"(
(emp ^name <n> ^dept <d>)
-(frozen ^dept <d>))");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows->size(), 2u);  // the two eng employees
  for (const auto& row : rows.ValueOrDie()) {
    EXPECT_EQ(row[0]->value(1), Value::Symbol("eng"));
  }
}

TEST_F(QueryTest, DisjunctionInQuery) {
  auto count = CountQuery(wm_, "(emp ^name << ann dan >>)");
  ASSERT_TRUE(count.ok()) << count.status();
  EXPECT_EQ(count.ValueOrDie(), 2u);
}

TEST_F(QueryTest, EmptyResult) {
  auto rows = ExecuteQuery(wm_, "(emp ^salary { > 1000 })");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->empty());
}

TEST_F(QueryTest, RowsAreDeterministicallyOrdered) {
  auto a = ExecuteQuery(wm_, "(emp ^dept <d>) (dept ^name <d>)");
  auto b = ExecuteQuery(wm_, "(emp ^dept <d>) (dept ^name <d>)");
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->size(), b->size());
  ASSERT_EQ(a->size(), 4u);
  for (size_t i = 0; i < a->size(); ++i) {
    for (size_t j = 0; j < (*a)[i].size(); ++j) {
      EXPECT_EQ((*a)[i][j]->id(), (*b)[i][j]->id());
    }
  }
}

TEST_F(QueryTest, ErrorsSurfaceCleanly) {
  EXPECT_TRUE(ExecuteQuery(wm_, "(nosuch ^x 1)").status().IsTypeError());
  EXPECT_TRUE(ExecuteQuery(wm_, "(emp ^nope 1)").status().IsTypeError());
  EXPECT_TRUE(ExecuteQuery(wm_, "(((").status().IsParseError());
  // Unbound variable in a predicate is a compile error.
  EXPECT_FALSE(ExecuteQuery(wm_, "(emp ^salary { > <x> })").ok());
}

TEST_F(QueryTest, QueryDoesNotMutateWorkingMemory) {
  size_t before = wm_.TotalCount();
  ASSERT_TRUE(ExecuteQuery(wm_, "(emp ^dept eng)").ok());
  EXPECT_EQ(wm_.TotalCount(), before);
}

}  // namespace
}  // namespace dbps
