// Robustness: the lexer/parser/compiler must never crash — only return
// Status errors — on malformed, truncated, or randomly mutated input.

#include <gtest/gtest.h>

#include <string>

#include "lang/compiler.h"
#include "lang/lexer.h"
#include "lang/parser.h"
#include "util/random.h"

namespace dbps {
namespace {

constexpr const char* kSeedProgram = R"(
(relation box (id int) (at symbol) (weight int))
(rule r :priority 2
  (box ^id <b> ^weight { > 10 <= 50 } ^at << dock floor >>)
  -(box ^id { <> <b> })
  -->
  (modify 1 ^weight (- 50 <b>))
  (make box ^id (+ <b> 1) ^at dock)
  (remove 1))
(make box ^id 1 ^at dock ^weight 12)
)";

TEST(Robustness, SeedProgramIsValid) {
  EXPECT_TRUE(CompileProgram(kSeedProgram).ok());
}

TEST(Robustness, TruncationsNeverCrash) {
  const std::string source = kSeedProgram;
  for (size_t cut = 0; cut < source.size(); cut += 3) {
    auto result = CompileProgram(source.substr(0, cut));
    // Any Status outcome is fine; crashing is not.
    (void)result.ok();
  }
}

TEST(Robustness, RandomByteMutationsNeverCrash) {
  Random rng(2024);
  const std::string source = kSeedProgram;
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = source;
    const int edits = 1 + static_cast<int>(rng.Uniform(4));
    for (int e = 0; e < edits; ++e) {
      size_t pos = static_cast<size_t>(rng.Uniform(mutated.size()));
      mutated[pos] = static_cast<char>(32 + rng.Uniform(95));
    }
    auto result = CompileProgram(mutated);
    (void)result.ok();
  }
}

TEST(Robustness, RandomTokenSoupNeverCrash) {
  Random rng(77);
  static const char* kPieces[] = {
      "(",    ")",      "{",      "}",     "<<",     ">>",  "-->",
      "-(",   "rule",   "make",   "remove", "modify", "halt", "relation",
      "^a",   "<x>",    ":priority", "=",  "<>",     "<",   ">=",
      "42",   "-3.5",   "\"s\"",  "nil",   "foo",    "+",   "mod"};
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup;
    const int len = 1 + static_cast<int>(rng.Uniform(40));
    for (int i = 0; i < len; ++i) {
      soup += kPieces[rng.Uniform(std::size(kPieces))];
      soup += " ";
    }
    auto result = CompileProgram(soup);
    (void)result.ok();
  }
}

TEST(Robustness, PathologicalInputsReturnErrors) {
  // Deep nesting must not blow the stack (expressions recurse).
  std::string deep = "(rule r (b ^x <v>) --> (make b ^x ";
  for (int i = 0; i < 200; ++i) deep += "(+ 1 ";
  deep += "<v>";
  for (int i = 0; i < 200; ++i) deep += ")";
  deep += "))";
  auto result = CompileProgram("(relation b (x int))" + deep);
  // 200 levels is fine to accept or reject — just no crash, and if it
  // compiles the expression must evaluate.
  (void)result.ok();

  EXPECT_FALSE(CompileProgram(std::string(1, '\0')).ok());
  EXPECT_FALSE(CompileProgram("((((((((((").ok());
  EXPECT_FALSE(CompileProgram(")").ok());
  EXPECT_TRUE(CompileProgram("").ok());  // empty program is legal
  EXPECT_TRUE(CompileProgram(";; only a comment\n").ok());
}

TEST(Robustness, LexerPositionsAreMonotone) {
  auto tokens = Lex(kSeedProgram).ValueOrDie();
  int line = 0, col = 0;
  for (const auto& token : tokens) {
    EXPECT_TRUE(token.line > line ||
                (token.line == line && token.col >= col))
        << token.ToString();
    line = token.line;
    col = token.col;
  }
}

}  // namespace
}  // namespace dbps
