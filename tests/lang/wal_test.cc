// WAL framing (lang/wal.h): encode/decode round trips, torn-tail vs
// corrupt-frame classification at every cut point, delta sequence
// density, and checkpoint fence validation.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dbps.h"

namespace dbps {
namespace {

WalRecord Delta_(uint64_t seq, const std::string& payload) {
  WalRecord record;
  record.seq = seq;
  record.type = WalRecordType::kDelta;
  record.payload = payload;
  return record;
}

WalRecord Checkpoint(uint64_t fence, const std::string& payload) {
  WalRecord record;
  record.seq = fence;
  record.type = WalRecordType::kCheckpoint;
  record.payload = payload;
  return record;
}

std::string Encode(const std::vector<WalRecord>& records) {
  std::string buf;
  for (const WalRecord& record : records) EncodeWalRecord(record, &buf);
  return buf;
}

TEST(WalTest, EmptyBufferScansClean) {
  const WalScan scan = ScanWalBuffer("");
  EXPECT_EQ(scan.tail, WalTail::kClean);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.valid_bytes, 0u);
  EXPECT_EQ(scan.truncated_bytes, 0u);
}

TEST(WalTest, EncodeScanRoundTrip) {
  const std::vector<WalRecord> records = {
      Delta_(0, "(delta (make order 1))"),
      Delta_(1, ""),  // empty payloads are legal frames
      Checkpoint(2, "(checkpoint (seq 2))"),
      Delta_(2, "(delta (delete 1))"),
  };
  const std::string buf = Encode(records);
  const WalScan scan = ScanWalBuffer(buf);
  EXPECT_EQ(scan.tail, WalTail::kClean) << scan.tail_detail;
  EXPECT_EQ(scan.valid_bytes, buf.size());
  EXPECT_EQ(scan.truncated_bytes, 0u);
  ASSERT_EQ(scan.records.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, records[i].seq) << "record " << i;
    EXPECT_EQ(scan.records[i].type, records[i].type) << "record " << i;
    EXPECT_EQ(scan.records[i].payload, records[i].payload) << "record " << i;
  }
}

TEST(WalTest, DecodeSingleRecordReportsConsumedBytes) {
  std::string buf;
  EncodeWalRecord(Delta_(7, "payload"), &buf);
  size_t consumed = 0;
  auto record_or = DecodeWalRecord(buf, 0, &consumed);
  ASSERT_TRUE(record_or.ok()) << record_or.status();
  EXPECT_EQ(consumed, buf.size());
  EXPECT_EQ(record_or.ValueOrDie().seq, 7u);
  EXPECT_EQ(record_or.ValueOrDie().payload, "payload");
}

TEST(WalTest, EveryPossibleTornCutIsTornNeverCorrupt) {
  // Two full records, then cut the buffer at EVERY byte inside the third:
  // each prefix must scan as exactly two records with a torn tail — a
  // crash can stop a write anywhere, and none of those states is
  // "corruption".
  const std::string head = Encode({Delta_(0, "(delta (make order 1))"),
                                   Delta_(1, "(delta (make order 2))")});
  std::string full = head;
  EncodeWalRecord(Delta_(2, "(delta (make order 3))"), &full);
  for (size_t cut = head.size() + 1; cut < full.size(); ++cut) {
    const WalScan scan = ScanWalBuffer(std::string_view(full).substr(0, cut));
    EXPECT_EQ(scan.records.size(), 2u) << "cut at " << cut;
    EXPECT_EQ(scan.tail, WalTail::kTorn)
        << "cut at " << cut << ": " << scan.tail_detail;
    EXPECT_EQ(scan.valid_bytes, head.size()) << "cut at " << cut;
    EXPECT_EQ(scan.truncated_bytes, cut - head.size()) << "cut at " << cut;
  }
}

TEST(WalTest, FlippedPayloadByteIsCorrupt) {
  const std::string head = Encode({Delta_(0, "(delta (make order 1))")});
  std::string buf = head;
  EncodeWalRecord(Delta_(1, "(delta (make order 2))"), &buf);
  buf[buf.size() - 3] ^= 0x40;  // damage the middle of the last payload
  const WalScan scan = ScanWalBuffer(buf);
  EXPECT_EQ(scan.records.size(), 1u);
  EXPECT_EQ(scan.tail, WalTail::kCorrupt);
  EXPECT_EQ(scan.valid_bytes, head.size());
  EXPECT_EQ(scan.truncated_bytes, buf.size() - head.size());
}

TEST(WalTest, ImpossibleLengthIsCorruptNotAllocated) {
  // A length below the 9-byte minimum body, and one beyond kMaxWalPayload:
  // both are corrupt headers even though the buffer is "long enough" to
  // be torn.
  std::string small;
  for (char c : {'\x03', '\x00', '\x00', '\x00'}) small.push_back(c);
  small.append(8, '\x00');
  EXPECT_EQ(ScanWalBuffer(small).tail, WalTail::kCorrupt);

  std::string huge;
  for (char c : {'\xff', '\xff', '\xff', '\xff'}) huge.push_back(c);
  huge.append(8, '\x00');
  EXPECT_EQ(ScanWalBuffer(huge).tail, WalTail::kCorrupt);
}

TEST(WalTest, UnknownRecordTypeIsCorrupt) {
  WalRecord bogus = Delta_(0, "x");
  bogus.type = static_cast<WalRecordType>(77);
  std::string buf;
  EncodeWalRecord(bogus, &buf);  // crc is valid; the TYPE is the problem
  const WalScan scan = ScanWalBuffer(buf);
  EXPECT_TRUE(scan.records.empty());
  EXPECT_EQ(scan.tail, WalTail::kCorrupt);
}

TEST(WalTest, DeltaSequenceMustBeDense) {
  const std::string buf =
      Encode({Delta_(0, "a"), Delta_(1, "b"), Delta_(3, "gap")});
  const WalScan scan = ScanWalBuffer(buf);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.tail, WalTail::kCorrupt);
  EXPECT_NE(scan.tail_detail.find("sequence break"), std::string::npos)
      << scan.tail_detail;
}

TEST(WalTest, FirstDeltaMayCarryAnySeq) {
  // An append-mode restart continues mid-history: the first record's seq
  // anchors the density check instead of failing it.
  const std::string buf = Encode({Delta_(42, "a"), Delta_(43, "b")});
  const WalScan scan = ScanWalBuffer(buf);
  EXPECT_EQ(scan.tail, WalTail::kClean) << scan.tail_detail;
  EXPECT_EQ(scan.records.size(), 2u);
}

TEST(WalTest, CheckpointFenceMustMatchNextSeq) {
  // Fence == next expected delta seq: valid, and does not advance it.
  const std::string good = Encode(
      {Delta_(0, "a"), Delta_(1, "b"), Checkpoint(2, "cp"), Delta_(2, "c")});
  EXPECT_EQ(ScanWalBuffer(good).tail, WalTail::kClean);
  EXPECT_EQ(ScanWalBuffer(good).records.size(), 4u);

  const std::string bad =
      Encode({Delta_(0, "a"), Delta_(1, "b"), Checkpoint(5, "cp")});
  const WalScan scan = ScanWalBuffer(bad);
  EXPECT_EQ(scan.records.size(), 2u);
  EXPECT_EQ(scan.tail, WalTail::kCorrupt);
  EXPECT_NE(scan.tail_detail.find("fence"), std::string::npos)
      << scan.tail_detail;
}

TEST(WalTest, LeadingCheckpointAnchorsTheSequence) {
  // A recovered server can checkpoint before its first new commit; the
  // checkpoint's fence then anchors where deltas must continue.
  const std::string good = Encode({Checkpoint(10, "cp"), Delta_(10, "a")});
  EXPECT_EQ(ScanWalBuffer(good).tail, WalTail::kClean);
  const std::string bad = Encode({Checkpoint(10, "cp"), Delta_(12, "a")});
  EXPECT_EQ(ScanWalBuffer(bad).tail, WalTail::kCorrupt);
}

}  // namespace
}  // namespace dbps
