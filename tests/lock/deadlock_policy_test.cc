// Deadlock prevention/avoidance/detection alternatives (§4.3's remark
// that standard 2PL schemes apply unchanged), plus engine-level
// consistency under every policy.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "engine/parallel_engine.h"
#include "lang/compiler.h"
#include "lock/lock_manager.h"
#include "semantics/replay_validator.h"
#include "server/session_manager.h"

namespace dbps {
namespace {

LockObjectId Tuple(const char* relation, WmeId id) {
  return LockObjectId{Sym(relation), id};
}

LockManager::Options Opts(DeadlockPolicy policy) {
  LockManager::Options options;
  options.protocol = LockProtocol::kTwoPhase;
  options.deadlock_policy = policy;
  options.wait_timeout = std::chrono::milliseconds(2000);
  return options;
}

LockManager::Options RcRaWaOpts(DeadlockPolicy policy) {
  LockManager::Options options = Opts(policy);
  options.protocol = LockProtocol::kRcRaWa;
  return options;
}

TEST(DeadlockPolicy, NoWaitRefusesImmediately) {
  LockManager lm(Opts(DeadlockPolicy::kNoWait));
  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kWa).ok());
  // No blocking, instant refusal.
  Status st = lm.Acquire(t2, Tuple("r", 1), LockMode::kRc);
  EXPECT_TRUE(st.IsDeadlock()) << st;
  EXPECT_GE(lm.GetStats().deadlocks, 1u);
  EXPECT_EQ(lm.GetStats().blocked, 0u);
}

TEST(DeadlockPolicy, NoWaitGrantsWhenFree) {
  LockManager lm(Opts(DeadlockPolicy::kNoWait));
  TxnId t1 = lm.Begin();
  EXPECT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kWa).ok());
  EXPECT_TRUE(lm.Acquire(t1, Tuple("r", 2), LockMode::kRc).ok());
}

TEST(DeadlockPolicy, WoundWaitOlderWoundsYounger) {
  LockManager lm(Opts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();   // smaller id
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(younger, Tuple("r", 1), LockMode::kWa).ok());

  // The older requester wounds the younger holder and then waits for its
  // release.
  auto request = std::async(std::launch::async, [&] {
    return lm.Acquire(older, Tuple("r", 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.IsAborted(younger));
  EXPECT_GE(lm.GetStats().wounds, 1u);
  lm.Release(younger);  // the wounded transaction rolls back
  EXPECT_TRUE(request.get().ok());
}

TEST(DeadlockPolicy, WoundWaitYoungerWaitsForOlder) {
  LockManager lm(Opts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(older, Tuple("r", 1), LockMode::kWa).ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status st = lm.Acquire(younger, Tuple("r", 1), LockMode::kWa);
    EXPECT_TRUE(st.ok()) << st;
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  EXPECT_FALSE(lm.IsAborted(older));  // younger never wounds
  lm.Release(older);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(DeadlockPolicy, WoundWaitResolvesUpgradeRace) {
  // Both hold Rc, both upgrade to Wa: under wound-wait the older one
  // wounds the younger instead of deadlocking.
  LockManager lm(Opts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(older, Tuple("r", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(younger, Tuple("r", 1), LockMode::kRc).ok());

  auto older_upgrade = std::async(std::launch::async, [&] {
    return lm.Acquire(older, Tuple("r", 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.IsAborted(younger));
  // The younger's own upgrade attempt fails with Aborted.
  EXPECT_TRUE(
      lm.Acquire(younger, Tuple("r", 1), LockMode::kWa).IsAborted());
  lm.Release(younger);
  EXPECT_TRUE(older_upgrade.get().ok());
}

// --- the same policies under the Rc/Ra/Wa protocol ---------------------
//
// Under kRcRaWa Wa-over-Rc never blocks (so that classic conflict can't
// deadlock at all); the remaining blocking cells — Wa-Wa, Rc/Ra-over-Wa —
// still can, and the standard 2PL schemes must apply unchanged (§4.3).

TEST(DeadlockPolicy, RcRaWaNoWaitRefusesOnWaWaConflict) {
  LockManager lm(RcRaWaOpts(DeadlockPolicy::kNoWait));
  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kWa).ok());
  // Wa over Rc would have been granted; Wa over Wa refuses instantly.
  Status st = lm.Acquire(t2, Tuple("r", 1), LockMode::kWa);
  EXPECT_TRUE(st.IsDeadlock()) << st;
  EXPECT_EQ(lm.GetStats().blocked, 0u);
}

TEST(DeadlockPolicy, RcRaWaNoWaitStillGrantsWaOverRc) {
  // The protocol's enhanced grant is unaffected by the no-wait policy:
  // no conflict is ever reached, so nothing to refuse.
  LockManager lm(RcRaWaOpts(DeadlockPolicy::kNoWait));
  TxnId reader = lm.Begin(), writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader, Tuple("r", 1), LockMode::kRc).ok());
  EXPECT_TRUE(lm.Acquire(writer, Tuple("r", 1), LockMode::kWa).ok());
  EXPECT_EQ(lm.GetStats().deadlocks, 0u);
}

TEST(DeadlockPolicy, RcRaWaWoundWaitOnRcOverWa) {
  // Rc requested over an outstanding Wa blocks under kRcRaWa; an older
  // reader wounds the younger writer instead of waiting forever.
  LockManager lm(RcRaWaOpts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(younger, Tuple("r", 1), LockMode::kWa).ok());

  auto request = std::async(std::launch::async, [&] {
    return lm.Acquire(older, Tuple("r", 1), LockMode::kRc);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.IsAborted(younger));
  EXPECT_GE(lm.GetStats().wounds, 1u);
  lm.Release(younger);
  EXPECT_TRUE(request.get().ok());
}

TEST(DeadlockPolicy, RcRaWaWoundWaitYoungerWaitsOnInsertIntentConflict) {
  // Hierarchy cell: an insert intent (tuple Wa) over a relation Rc is the
  // enhanced grant — settled at commit by victimization, never blocking —
  // so the waiting direction is the reverse: a relation Rc requested over
  // an outstanding insert intent is Rc-over-Wa, denied in both matrices.
  // The requester here is younger, so under wound-wait it waits rather
  // than wounding the older creator.
  LockManager lm(RcRaWaOpts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(older,
                         LockObjectId{Sym("r"), kInsertLockBase + older},
                         LockMode::kWa)
                  .ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    EXPECT_TRUE(
        lm.Acquire(younger, LockObjectId{Sym("r"), kRelationLevel},
                   LockMode::kRc)
            .ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  EXPECT_FALSE(lm.IsAborted(older));
  lm.Release(older);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(DeadlockPolicy, ToStringNames) {
  EXPECT_STREQ(DeadlockPolicyToString(DeadlockPolicy::kDetect), "detect");
  EXPECT_STREQ(DeadlockPolicyToString(DeadlockPolicy::kWoundWait),
               "wound-wait");
  EXPECT_STREQ(DeadlockPolicyToString(DeadlockPolicy::kNoWait), "no-wait");
}

// Engine-level: the contended-counter workload stays exact and replayable
// under every (protocol, deadlock policy) combination.
class DeadlockPolicyEngine
    : public ::testing::TestWithParam<std::tuple<LockProtocol,
                                                 DeadlockPolicy>> {};

TEST_P(DeadlockPolicyEngine, ContendedCounterStaysConsistent) {
  auto [protocol, policy] = GetParam();
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation counter (v int))
(rule bump (counter ^v { < 25 } ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make counter ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  auto pristine = wm.Clone();
  ParallelEngineOptions options;
  options.num_workers = 6;
  options.protocol = protocol;
  options.deadlock_policy = policy;
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 25u);
  EXPECT_EQ(wm.Scan(Sym("counter"))[0]->value(0), Value::Int(25));
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  EXPECT_TRUE(valid.ok()) << valid;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DeadlockPolicyEngine,
    ::testing::Combine(::testing::Values(LockProtocol::kTwoPhase,
                                         LockProtocol::kRcRaWa),
                       ::testing::Values(DeadlockPolicy::kDetect,
                                         DeadlockPolicy::kWoundWait,
                                         DeadlockPolicy::kNoWait)),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) == LockProtocol::kTwoPhase ? "TwoPhase"
                                                             : "RcRaWa";
      switch (std::get<1>(info.param)) {
        case DeadlockPolicy::kDetect:
          return name + "Detect";
        case DeadlockPolicy::kWoundWait:
          return name + "WoundWait";
        case DeadlockPolicy::kNoWait:
          return name + "NoWait";
      }
      return name;
    });

// --- mixed rule-firing + external-transaction deadlocks ----------------
//
// Client sessions and rule firings wait on each other's locks in both
// directions: the `respond` firing holds Wa on a req tuple and needs an
// insert intent into `ack`, while a client holds relation Rc on `ack`
// (repeatable read) and then needs relation Rc on `req` — a cycle across
// the rule/client boundary whenever the timing lines up. Under kWoundWait
// one side is wounded and retried; under kNoWait the requester is
// refused and retried. Either way every transaction must eventually get
// through and the log must stay replayable.

constexpr const char* kMixedDeadlockProgram = R"(
(relation req (id int))
(relation ack (id int))

(rule respond :cost 100
  (req ^id <i>)
  -(ack ^id <i>)
  -->
  (remove 1)
  (make ack ^id <i>))
)";

class MixedDeadlockTest
    : public ::testing::TestWithParam<std::tuple<LockProtocol,
                                                 DeadlockPolicy>> {};

TEST_P(MixedDeadlockTest, ClientsAndFiringsResolveCrossBoundaryCycles) {
  auto [protocol, policy] = GetParam();
  constexpr size_t kClients = 3;
  constexpr uint64_t kTxnsPerClient = 8;

  WorkingMemory wm;
  auto rules = LoadProgram(kMixedDeadlockProgram, &wm).ValueOrDie();
  auto pristine = wm.Clone();

  ServerOptions server_options;
  server_options.session.max_txn_retries = 64;  // ample under heavy conflict
  SessionManager manager(&wm, server_options);
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = protocol;
  options.deadlock_policy = policy;
  options.external_source = &manager;
  ParallelEngine engine(&wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session_or = manager.Connect("mixed-" + std::to_string(c));
      ASSERT_TRUE(session_or.ok()) << session_or.status();
      SessionPtr session = session_or.ValueOrDie();
      for (uint64_t i = 0; i < kTxnsPerClient; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          // Repeatable reads over both relations — the client side of
          // the cross-boundary cycle.
          auto acks_or = s.Read("ack");
          if (!acks_or.ok()) return acks_or.status();
          auto reqs_or = s.Read("req");
          if (!reqs_or.ok()) return reqs_or.status();
          Delta delta;
          delta.Create(Sym("req"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i))});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        ASSERT_TRUE(st.ok())
            << "client " << c << " txn " << i << ": " << st;
        committed.fetch_add(1);
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();

  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult& result = result_or.ValueOrDie();

  // Full progress on both sides of the boundary: every client request
  // committed and was answered by exactly one firing.
  const uint64_t expected = kClients * kTxnsPerClient;
  EXPECT_EQ(committed.load(), expected);
  EXPECT_EQ(result.stats.firings, expected);
  EXPECT_EQ(wm.Count(Sym("req")), 0u);
  EXPECT_EQ(wm.Count(Sym("ack")), expected);
  EXPECT_EQ(engine.live_lock_transactions(), 0u);

  // And the interleaved log is still a valid single-thread execution.
  Status replay = ValidateReplay(pristine.get(), rules, result.log);
  ASSERT_TRUE(replay.ok()) << replay;
  EXPECT_EQ(pristine->TotalCount(), wm.TotalCount());
}

INSTANTIATE_TEST_SUITE_P(
    Policies, MixedDeadlockTest,
    ::testing::Combine(::testing::Values(LockProtocol::kTwoPhase,
                                         LockProtocol::kRcRaWa),
                       ::testing::Values(DeadlockPolicy::kWoundWait,
                                         DeadlockPolicy::kNoWait)),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) == LockProtocol::kTwoPhase ? "TwoPhase"
                                                             : "RcRaWa";
      name += std::get<1>(info.param) == DeadlockPolicy::kWoundWait
                  ? "WoundWait"
                  : "NoWait";
      return name;
    });

}  // namespace
}  // namespace dbps
