// Deadlock prevention/avoidance/detection alternatives (§4.3's remark
// that standard 2PL schemes apply unchanged), plus engine-level
// consistency under every policy.

#include <gtest/gtest.h>

#include <future>
#include <thread>

#include "engine/parallel_engine.h"
#include "lang/compiler.h"
#include "lock/lock_manager.h"
#include "semantics/replay_validator.h"

namespace dbps {
namespace {

LockObjectId Tuple(const char* relation, WmeId id) {
  return LockObjectId{Sym(relation), id};
}

LockManager::Options Opts(DeadlockPolicy policy) {
  LockManager::Options options;
  options.protocol = LockProtocol::kTwoPhase;
  options.deadlock_policy = policy;
  options.wait_timeout = std::chrono::milliseconds(2000);
  return options;
}

TEST(DeadlockPolicy, NoWaitRefusesImmediately) {
  LockManager lm(Opts(DeadlockPolicy::kNoWait));
  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kWa).ok());
  // No blocking, instant refusal.
  Status st = lm.Acquire(t2, Tuple("r", 1), LockMode::kRc);
  EXPECT_TRUE(st.IsDeadlock()) << st;
  EXPECT_GE(lm.GetStats().deadlocks, 1u);
  EXPECT_EQ(lm.GetStats().blocked, 0u);
}

TEST(DeadlockPolicy, NoWaitGrantsWhenFree) {
  LockManager lm(Opts(DeadlockPolicy::kNoWait));
  TxnId t1 = lm.Begin();
  EXPECT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kWa).ok());
  EXPECT_TRUE(lm.Acquire(t1, Tuple("r", 2), LockMode::kRc).ok());
}

TEST(DeadlockPolicy, WoundWaitOlderWoundsYounger) {
  LockManager lm(Opts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();   // smaller id
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(younger, Tuple("r", 1), LockMode::kWa).ok());

  // The older requester wounds the younger holder and then waits for its
  // release.
  auto request = std::async(std::launch::async, [&] {
    return lm.Acquire(older, Tuple("r", 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.IsAborted(younger));
  EXPECT_GE(lm.GetStats().wounds, 1u);
  lm.Release(younger);  // the wounded transaction rolls back
  EXPECT_TRUE(request.get().ok());
}

TEST(DeadlockPolicy, WoundWaitYoungerWaitsForOlder) {
  LockManager lm(Opts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(older, Tuple("r", 1), LockMode::kWa).ok());

  std::atomic<bool> granted{false};
  std::thread waiter([&] {
    Status st = lm.Acquire(younger, Tuple("r", 1), LockMode::kWa);
    EXPECT_TRUE(st.ok()) << st;
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  EXPECT_FALSE(lm.IsAborted(older));  // younger never wounds
  lm.Release(older);
  waiter.join();
  EXPECT_TRUE(granted.load());
}

TEST(DeadlockPolicy, WoundWaitResolvesUpgradeRace) {
  // Both hold Rc, both upgrade to Wa: under wound-wait the older one
  // wounds the younger instead of deadlocking.
  LockManager lm(Opts(DeadlockPolicy::kWoundWait));
  TxnId older = lm.Begin();
  TxnId younger = lm.Begin();
  ASSERT_TRUE(lm.Acquire(older, Tuple("r", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(younger, Tuple("r", 1), LockMode::kRc).ok());

  auto older_upgrade = std::async(std::launch::async, [&] {
    return lm.Acquire(older, Tuple("r", 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_TRUE(lm.IsAborted(younger));
  // The younger's own upgrade attempt fails with Aborted.
  EXPECT_TRUE(
      lm.Acquire(younger, Tuple("r", 1), LockMode::kWa).IsAborted());
  lm.Release(younger);
  EXPECT_TRUE(older_upgrade.get().ok());
}

TEST(DeadlockPolicy, ToStringNames) {
  EXPECT_STREQ(DeadlockPolicyToString(DeadlockPolicy::kDetect), "detect");
  EXPECT_STREQ(DeadlockPolicyToString(DeadlockPolicy::kWoundWait),
               "wound-wait");
  EXPECT_STREQ(DeadlockPolicyToString(DeadlockPolicy::kNoWait), "no-wait");
}

// Engine-level: the contended-counter workload stays exact and replayable
// under every (protocol, deadlock policy) combination.
class DeadlockPolicyEngine
    : public ::testing::TestWithParam<std::tuple<LockProtocol,
                                                 DeadlockPolicy>> {};

TEST_P(DeadlockPolicyEngine, ContendedCounterStaysConsistent) {
  auto [protocol, policy] = GetParam();
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation counter (v int))
(rule bump (counter ^v { < 25 } ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make counter ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  auto pristine = wm.Clone();
  ParallelEngineOptions options;
  options.num_workers = 6;
  options.protocol = protocol;
  options.deadlock_policy = policy;
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 25u);
  EXPECT_EQ(wm.Scan(Sym("counter"))[0]->value(0), Value::Int(25));
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  EXPECT_TRUE(valid.ok()) << valid;
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, DeadlockPolicyEngine,
    ::testing::Combine(::testing::Values(LockProtocol::kTwoPhase,
                                         LockProtocol::kRcRaWa),
                       ::testing::Values(DeadlockPolicy::kDetect,
                                         DeadlockPolicy::kWoundWait,
                                         DeadlockPolicy::kNoWait)),
    [](const auto& info) {
      std::string name =
          std::get<0>(info.param) == LockProtocol::kTwoPhase ? "TwoPhase"
                                                             : "RcRaWa";
      switch (std::get<1>(info.param)) {
        case DeadlockPolicy::kDetect:
          return name + "Detect";
        case DeadlockPolicy::kWoundWait:
          return name + "WoundWait";
        case DeadlockPolicy::kNoWait:
          return name + "NoWait";
      }
      return name;
    });

}  // namespace
}  // namespace dbps
