// Tests for the lock-free CAS grant fast path (DESIGN.md §4.1): which
// requests ride it, how the slow path seals it, how the relation guard
// keeps the hierarchy check sound, and — under TSan — that readers
// hammering a slot's mode-word while a writer seals it lose no wakeups
// and keep the grant accounting exact.

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <string>
#include <thread>
#include <vector>

#include "lock/lock_manager.h"

namespace dbps {
namespace {

LockObjectId Tuple(SymbolId relation, WmeId id) {
  return LockObjectId{relation, id};
}
LockObjectId RelationLock(SymbolId relation) {
  return LockObjectId{relation, kRelationLevel};
}

LockManager::Options Opts(LockProtocol protocol,
                          DeadlockPolicy policy = DeadlockPolicy::kDetect) {
  LockManager::Options options;
  options.protocol = protocol;
  options.deadlock_policy = policy;
  options.wait_timeout = std::chrono::milliseconds(2000);
  return options;
}

/// Global + per-shard grant accounting must agree regardless of which
/// path each grant took.
void ExpectAccountingConsistent(const LockManager::Stats& stats) {
  uint64_t slow = 0, fast = 0, retries = 0;
  for (const auto& shard : stats.shards) {
    slow += shard.acquires;
    fast += shard.fast_path_grants;
    retries += shard.fast_path_cas_retries;
  }
  EXPECT_EQ(slow + fast, stats.acquired);
  EXPECT_EQ(fast, stats.fast_path_grants);
  EXPECT_EQ(retries, stats.fast_path_cas_retries);
}

// --- which grants are fast ------------------------------------------------

TEST(FastPath, UncontendedTupleGrantsAreFast) {
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  const SymbolId rel = Sym("fp-uncontended");
  TxnId txn = lm.Begin();
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 2), LockMode::kRa).ok());
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 3), LockMode::kWa).ok());
  EXPECT_TRUE(lm.Holds(txn, Tuple(rel, 1), LockMode::kRc));
  EXPECT_TRUE(lm.Holds(txn, Tuple(rel, 3), LockMode::kWa));

  LockManager::Stats stats = lm.GetStats();
  EXPECT_EQ(stats.fast_path_grants, 3u);
  EXPECT_EQ(stats.acquired, 3u);
  ExpectAccountingConsistent(stats);

  lm.Release(txn);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

TEST(FastPath, RelationLevelRequestsNeverUseTheFastPath) {
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  TxnId txn = lm.Begin();
  ASSERT_TRUE(
      lm.Acquire(txn, RelationLock(Sym("fp-rel-level")), LockMode::kRc).ok());
  EXPECT_EQ(lm.GetStats().fast_path_grants, 0u);
  lm.Release(txn);
}

TEST(FastPath, AblationSwitchForcesEveryGrantSlow) {
  LockManager::Options options = Opts(LockProtocol::kRcRaWa);
  options.fast_path = false;
  LockManager lm(options);
  const SymbolId rel = Sym("fp-ablation");
  TxnId txn = lm.Begin();
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 2), LockMode::kWa).ok());
  LockManager::Stats stats = lm.GetStats();
  EXPECT_EQ(stats.fast_path_grants, 0u);
  EXPECT_EQ(stats.acquired, 2u);
  ExpectAccountingConsistent(stats);
  lm.Release(txn);
}

TEST(FastPath, WaOverRcIsFastAndVictimSweepStillSeesTheReader) {
  // The paper's key cell ridden entirely on the fast path: both the Rc
  // and the overlapping Wa are single-CAS grants, yet the commit-time
  // settlement must still find the fast Rc holder through the slot's
  // holder entries.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  const SymbolId rel = Sym("fp-waoverrc");
  TxnId reader = lm.Begin(), writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader, Tuple(rel, 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(writer, Tuple(rel, 1), LockMode::kWa).ok());
  EXPECT_EQ(lm.GetStats().fast_path_grants, 2u);

  std::vector<TxnId> victims = lm.CollectRcVictims(writer);
  EXPECT_EQ(victims, std::vector<TxnId>{reader});

  lm.Release(reader);
  lm.Release(writer);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

TEST(FastPath, SelfUpgradeFallsBackToTheSlowPathButSucceeds) {
  // Wa on a tuple whose own Rc is already in the mode-word looks like a
  // conflict to the word (it cannot attribute counts to holders), so the
  // fast path conservatively retreats; the slow path skips self-conflicts
  // and grants.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  const SymbolId rel = Sym("fp-upgrade");
  TxnId txn = lm.Begin();
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 1), LockMode::kWa).ok());
  EXPECT_TRUE(lm.Holds(txn, Tuple(rel, 1), LockMode::kWa));
  LockManager::Stats stats = lm.GetStats();
  EXPECT_EQ(stats.acquired, 2u);
  ExpectAccountingConsistent(stats);
  lm.Release(txn);
}

// --- sealing and the relation guard ---------------------------------------

TEST(FastPath, TwoPhaseConflictSealsTheSlotAndWakesTheWriter) {
  // Under 2PL a Wa over an outstanding fast Rc must block: the writer's
  // slow acquire seals the slot, finds the fast holder, waits, and is
  // woken by the reader's release — the no-lost-wakeup contract between
  // the two paths.
  LockManager lm(Opts(LockProtocol::kTwoPhase));
  const SymbolId rel = Sym("fp-seal");
  TxnId reader = lm.Begin(), writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader, Tuple(rel, 1), LockMode::kRc).ok());
  EXPECT_EQ(lm.GetStats().fast_path_grants, 1u);

  auto blocked = std::async(std::launch::async, [&] {
    return lm.Acquire(writer, Tuple(rel, 1), LockMode::kWa);
  });
  ASSERT_EQ(blocked.wait_for(std::chrono::milliseconds(100)),
            std::future_status::timeout)
      << "writer was granted Wa over a live Rc under kTwoPhase";
  lm.Release(reader);
  ASSERT_TRUE(blocked.get().ok());

  LockManager::Stats stats = lm.GetStats();
  EXPECT_GE(stats.blocked, 1u);
  ExpectAccountingConsistent(stats);
  lm.Release(writer);
}

TEST(FastPath, RelationGuardRoutesTupleAcquiresSlow) {
  // A granted relation-level lock raises the relation guard, so tuple
  // grants in that relation leave the fast path (the relation-level
  // holder's conflict scan must be able to see every tuple hold); tuple
  // grants in other relations stay fast.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  const SymbolId guarded = Sym("fp-guarded");
  const SymbolId open = Sym("fp-open");
  TxnId holder = lm.Begin();
  ASSERT_TRUE(lm.Acquire(holder, RelationLock(guarded), LockMode::kRc).ok());

  TxnId txn = lm.Begin();
  ASSERT_TRUE(lm.Acquire(txn, Tuple(guarded, 1), LockMode::kRc).ok());
  EXPECT_EQ(lm.GetStats().fast_path_grants, 0u);
  ASSERT_TRUE(lm.Acquire(txn, Tuple(open, 1), LockMode::kRc).ok());
  EXPECT_EQ(lm.GetStats().fast_path_grants, 1u);

  lm.Release(txn);
  lm.Release(holder);
}

TEST(FastPath, FastGrantCannotBypassARelationLevelWa) {
  // Hierarchy safety end to end: with a relation-level Wa outstanding, a
  // tuple Rc in that relation must reach the slow path's hierarchy check
  // and be refused (kNoWait) rather than sneak through the fast path.
  LockManager lm(Opts(LockProtocol::kTwoPhase, DeadlockPolicy::kNoWait));
  const SymbolId rel = Sym("fp-hier");
  TxnId writer = lm.Begin(), reader = lm.Begin();
  ASSERT_TRUE(lm.Acquire(writer, RelationLock(rel), LockMode::kWa).ok());
  Status st = lm.Acquire(reader, Tuple(rel, 1), LockMode::kRc);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_EQ(lm.GetStats().fast_path_grants, 0u);
  lm.Release(reader);
  lm.Release(writer);
}

TEST(FastPath, BlockingTransactionSkipsTheFastPath) {
  // Starvation escalation must see exact conflicts, so an escalated
  // transaction acquires everything through the slow path.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  const SymbolId rel = Sym("fp-blocking");
  TxnId txn = lm.Begin();
  lm.SetBlocking(txn);
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc).ok());
  EXPECT_EQ(lm.GetStats().fast_path_grants, 0u);
  lm.Release(txn);
}

TEST(FastPath, HolderTableOverflowFallsBackAndRecovers) {
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  const SymbolId rel = Sym("fp-overflow");
  std::vector<TxnId> txns;
  for (size_t i = 0; i < LockManager::kFastHolderSlots + 1; ++i) {
    TxnId txn = lm.Begin();
    ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc).ok());
    txns.push_back(txn);
  }
  // The first kFastHolderSlots grants filled the slot's holder entries;
  // the overflow grant went slow (and sealed the slot).
  LockManager::Stats stats = lm.GetStats();
  EXPECT_EQ(stats.fast_path_grants, LockManager::kFastHolderSlots);
  EXPECT_EQ(stats.acquired, LockManager::kFastHolderSlots + 1);
  ExpectAccountingConsistent(stats);

  for (TxnId txn : txns) lm.Release(txn);
  // The last release dropped the slot's seal; fast grants resume.
  TxnId txn = lm.Begin();
  ASSERT_TRUE(lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc).ok());
  EXPECT_EQ(lm.GetStats().fast_path_grants,
            LockManager::kFastHolderSlots + 1);
  lm.Release(txn);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

// --- deadlock policies engage only on the slow path -----------------------

TEST(FastPath, WoundWaitWoundsAFastHolder) {
  LockManager lm(Opts(LockProtocol::kTwoPhase, DeadlockPolicy::kWoundWait));
  const SymbolId rel = Sym("fp-wound");
  TxnId older = lm.Begin(), younger = lm.Begin();
  ASSERT_LT(older, younger);
  // The younger transaction's hold is a pure fast grant...
  ASSERT_TRUE(lm.Acquire(younger, Tuple(rel, 1), LockMode::kWa).ok());
  ASSERT_EQ(lm.GetStats().fast_path_grants, 1u);

  // ...and the older requester's slow path still finds and wounds it.
  auto older_wait = std::async(std::launch::async, [&] {
    return lm.Acquire(older, Tuple(rel, 1), LockMode::kWa);
  });
  for (int i = 0; i < 200 && !lm.IsAborted(younger); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_TRUE(lm.IsAborted(younger));
  lm.Release(younger);
  ASSERT_TRUE(older_wait.get().ok());
  EXPECT_GE(lm.GetStats().wounds, 1u);
  lm.Release(older);
}

TEST(FastPath, NoWaitRefusesAConflictWithAFastHolder) {
  LockManager lm(Opts(LockProtocol::kTwoPhase, DeadlockPolicy::kNoWait));
  const SymbolId rel = Sym("fp-nowait");
  TxnId holder = lm.Begin(), loser = lm.Begin();
  ASSERT_TRUE(lm.Acquire(holder, Tuple(rel, 1), LockMode::kWa).ok());
  ASSERT_EQ(lm.GetStats().fast_path_grants, 1u);
  Status st = lm.Acquire(loser, Tuple(rel, 1), LockMode::kWa);
  EXPECT_TRUE(st.IsDeadlock()) << st.ToString();
  EXPECT_GE(lm.GetStats().deadlocks, 1u);
  lm.Release(holder);
  lm.Release(loser);
}

// --- concurrency stress (the TSan gate) -----------------------------------

TEST(FastPath, RcReadersVsSealingWaWriterStress) {
  // Readers hammer one tuple's mode-word with fast Rc grants while a 2PL
  // writer repeatedly seals the slot, drains it, waits for the readers,
  // and writes. Terminating at all proves no wakeup is lost between the
  // two paths; the accounting identity proves no grant went uncounted.
  LockManager lm(Opts(LockProtocol::kTwoPhase));
  const SymbolId rel = Sym("fp-stress-2pl");
  constexpr int kReaders = 4;
  constexpr int kReadsPerReader = 300;
  constexpr int kWrites = 10;

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kReadsPerReader; ++i) {
        TxnId txn = lm.Begin();
        Status st = lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc);
        ASSERT_TRUE(st.ok()) << st.ToString();
        lm.Release(txn);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kWrites; ++i) {
      TxnId txn = lm.Begin();
      Status st = lm.Acquire(txn, Tuple(rel, 1), LockMode::kWa);
      ASSERT_TRUE(st.ok()) << st.ToString();
      lm.Release(txn);
      std::this_thread::yield();
    }
  });
  for (auto& thread : threads) thread.join();

  LockManager::Stats stats = lm.GetStats();
  EXPECT_EQ(stats.acquired,
            static_cast<uint64_t>(kReaders) * kReadsPerReader + kWrites);
  EXPECT_GT(stats.fast_path_grants, 0u);
  ExpectAccountingConsistent(stats);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

TEST(FastPath, RcRaWaVictimizationStress) {
  // The production shape: fast Rc readers, fast Wa-over-Rc writers that
  // settle the Rc debt (CollectRcVictims + MarkAborted) at commit, and
  // readers that observe their abort mark, roll back, and retry.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  const SymbolId rel = Sym("fp-stress-rcrawa");
  constexpr int kReaders = 3;
  constexpr int kOpsPerReader = 200;
  constexpr int kWrites = 50;
  std::atomic<uint64_t> reader_aborts{0};

  std::vector<std::thread> threads;
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerReader; ++i) {
        TxnId txn = lm.Begin();
        Status st = lm.Acquire(txn, Tuple(rel, 1), LockMode::kRc);
        if (st.ok() && lm.IsAborted(txn)) st = Status::Aborted("marked");
        if (!st.ok()) reader_aborts.fetch_add(1);
        ASSERT_TRUE(st.ok() || st.IsAborted()) << st.ToString();
        lm.Release(txn);
      }
    });
  }
  threads.emplace_back([&] {
    for (int i = 0; i < kWrites; ++i) {
      TxnId txn = lm.Begin();
      Status st = lm.Acquire(txn, Tuple(rel, 1), LockMode::kWa);
      ASSERT_TRUE(st.ok()) << st.ToString();
      for (TxnId victim : lm.CollectRcVictims(txn)) lm.MarkAborted(victim);
      lm.Release(txn);
    }
  });
  for (auto& thread : threads) thread.join();

  LockManager::Stats stats = lm.GetStats();
  EXPECT_GT(stats.fast_path_grants, 0u);
  ExpectAccountingConsistent(stats);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

}  // namespace
}  // namespace dbps
