#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>

#include "lock/lock_manager.h"
#include "util/failpoint.h"

namespace dbps {
namespace {

LockObjectId Tuple(const char* relation, WmeId id) {
  return LockObjectId{Sym(relation), id};
}
LockObjectId Relation(const char* relation) {
  return LockObjectId{Sym(relation), kRelationLevel};
}

LockManager::Options FastOptions(LockProtocol protocol) {
  LockManager::Options options;
  options.protocol = protocol;
  options.wait_timeout = std::chrono::milliseconds(2000);
  return options;
}

// --- Table 4.1 ---------------------------------------------------------

TEST(LockCompatibility, Table41RcRaWa) {
  const LockProtocol p = LockProtocol::kRcRaWa;
  // Row Rc: Y Y N
  EXPECT_TRUE(Compatible(p, LockMode::kRc, LockMode::kRc));
  EXPECT_TRUE(Compatible(p, LockMode::kRc, LockMode::kRa));
  EXPECT_FALSE(Compatible(p, LockMode::kRc, LockMode::kWa));
  // Row Ra: Y Y N
  EXPECT_TRUE(Compatible(p, LockMode::kRa, LockMode::kRc));
  EXPECT_TRUE(Compatible(p, LockMode::kRa, LockMode::kRa));
  EXPECT_FALSE(Compatible(p, LockMode::kRa, LockMode::kWa));
  // Row Wa: Y N N  — the paper's key cell: Wa over Rc is GRANTED.
  EXPECT_TRUE(Compatible(p, LockMode::kWa, LockMode::kRc));
  EXPECT_FALSE(Compatible(p, LockMode::kWa, LockMode::kRa));
  EXPECT_FALSE(Compatible(p, LockMode::kWa, LockMode::kWa));
}

TEST(LockCompatibility, TwoPhaseBlocksWaOverRc) {
  const LockProtocol p = LockProtocol::kTwoPhase;
  EXPECT_FALSE(Compatible(p, LockMode::kWa, LockMode::kRc));
  // Everything else identical to Table 4.1.
  EXPECT_TRUE(Compatible(p, LockMode::kRc, LockMode::kRa));
  EXPECT_FALSE(Compatible(p, LockMode::kRc, LockMode::kWa));
  EXPECT_FALSE(Compatible(p, LockMode::kWa, LockMode::kWa));
}

TEST(LockCompatibility, MatrixRendering) {
  std::string rc = CompatibilityMatrixToString(LockProtocol::kRcRaWa);
  std::string two = CompatibilityMatrixToString(LockProtocol::kTwoPhase);
  EXPECT_NE(rc, two);
  EXPECT_NE(rc.find("req Wa:     Y"), std::string::npos);
  EXPECT_NE(two.find("req Wa:     N"), std::string::npos);
}

// --- grants & conflicts --------------------------------------------------

TEST(LockManager, SharedReadsCoexist) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  EXPECT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kRc).ok());
  EXPECT_TRUE(lm.Acquire(t2, Tuple("r", 1), LockMode::kRc).ok());
  EXPECT_TRUE(lm.Acquire(t2, Tuple("r", 1), LockMode::kRa).ok());
  EXPECT_TRUE(lm.Holds(t1, Tuple("r", 1), LockMode::kRc));
  EXPECT_TRUE(lm.Holds(t2, Tuple("r", 1), LockMode::kRa));
}

TEST(LockManager, WaOverRcGrantedUnderRcRaWa) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId reader = lm.Begin(), writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader, Tuple("r", 1), LockMode::kRc).ok());
  // The enhanced-parallelism grant: no blocking.
  EXPECT_TRUE(lm.Acquire(writer, Tuple("r", 1), LockMode::kWa).ok());
  // Settlement: the reader is a victim of the writer's commit.
  auto victims = lm.CollectRcVictims(writer);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], reader);
}

TEST(LockManager, WaOverRcBlocksUnder2PL) {
  LockManager lm(FastOptions(LockProtocol::kTwoPhase));
  TxnId reader = lm.Begin(), writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader, Tuple("r", 1), LockMode::kRc).ok());

  std::atomic<bool> granted{false};
  std::thread blocked([&] {
    Status st = lm.Acquire(writer, Tuple("r", 1), LockMode::kWa);
    EXPECT_TRUE(st.ok()) << st;
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());  // still waiting on the Rc holder
  lm.Release(reader);
  blocked.join();
  EXPECT_TRUE(granted.load());
  EXPECT_TRUE(lm.CollectRcVictims(writer).empty());  // 2PL never has victims
}

TEST(LockManager, RcBlocksOnOutstandingWa) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId writer = lm.Begin(), reader = lm.Begin();
  ASSERT_TRUE(lm.Acquire(writer, Tuple("r", 1), LockMode::kWa).ok());

  std::atomic<bool> granted{false};
  std::thread blocked([&] {
    EXPECT_TRUE(lm.Acquire(reader, Tuple("r", 1), LockMode::kRc).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.Release(writer);
  blocked.join();
}

TEST(LockManager, ReacquireOwnModesIsCheap) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId t = lm.Begin();
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).ok());
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).ok());
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kWa).ok());  // upgrade
  EXPECT_TRUE(lm.Holds(t, Tuple("r", 1), LockMode::kWa));
}

TEST(LockManager, SelfConflictNeverBlocks) {
  LockManager lm(FastOptions(LockProtocol::kTwoPhase));
  TxnId t = lm.Begin();
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).ok());
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kWa).ok());
  EXPECT_TRUE(lm.Acquire(t, Relation("r"), LockMode::kWa).ok());
}

// --- hierarchy -----------------------------------------------------------

TEST(LockManager, RelationRcConflictsWithTupleWa) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId neg_reader = lm.Begin(), writer = lm.Begin();
  // Negated CE: relation-level Rc.
  ASSERT_TRUE(lm.Acquire(neg_reader, Relation("r"), LockMode::kRc).ok());
  // Tuple write in the same relation is granted (Rc–Wa cell)...
  ASSERT_TRUE(lm.Acquire(writer, Tuple("r", 7), LockMode::kWa).ok());
  // ...but the negation holder is a commit victim (hierarchy check).
  auto victims = lm.CollectRcVictims(writer);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], neg_reader);
}

TEST(LockManager, InsertIntentConflictsWithRelationRc) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId neg_reader = lm.Begin(), creator = lm.Begin();
  ASSERT_TRUE(lm.Acquire(neg_reader, Relation("r"), LockMode::kRc).ok());
  LockObjectId intent{Sym("r"), kInsertLockBase + creator};
  EXPECT_TRUE(intent.is_insert_intent());
  ASSERT_TRUE(lm.Acquire(creator, intent, LockMode::kWa).ok());
  auto victims = lm.CollectRcVictims(creator);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], neg_reader);
}

TEST(LockManager, InsertIntentsDoNotConflictWithEachOther) {
  LockManager lm(FastOptions(LockProtocol::kTwoPhase));
  TxnId c1 = lm.Begin(), c2 = lm.Begin();
  ASSERT_TRUE(
      lm.Acquire(c1, {Sym("r"), kInsertLockBase + c1}, LockMode::kWa).ok());
  // Even under 2PL, two creators into one relation proceed in parallel.
  ASSERT_TRUE(
      lm.Acquire(c2, {Sym("r"), kInsertLockBase + c2}, LockMode::kWa).ok());
}

TEST(LockManager, RelationWaVictimizesTupleRcHolders) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId reader = lm.Begin(), bulk_writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader, Tuple("r", 3), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(bulk_writer, Relation("r"), LockMode::kWa).ok());
  auto victims = lm.CollectRcVictims(bulk_writer);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], reader);
}

TEST(LockManager, TupleRcInOtherRelationIsUnaffected) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId reader = lm.Begin(), writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader, Tuple("other", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(writer, Tuple("r", 1), LockMode::kWa).ok());
  EXPECT_TRUE(lm.CollectRcVictims(writer).empty());
}

TEST(LockManager, TwoPhaseRelationRcBlocksInsertIntent) {
  LockManager lm(FastOptions(LockProtocol::kTwoPhase));
  TxnId neg_reader = lm.Begin(), creator = lm.Begin();
  ASSERT_TRUE(lm.Acquire(neg_reader, Relation("r"), LockMode::kRc).ok());
  std::atomic<bool> granted{false};
  std::thread blocked([&] {
    EXPECT_TRUE(lm.Acquire(creator, {Sym("r"), kInsertLockBase + creator},
                           LockMode::kWa)
                    .ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.Release(neg_reader);
  blocked.join();
}

// --- abort marking ---------------------------------------------------------

TEST(LockManager, MarkAbortedFailsFutureAcquires) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId t = lm.Begin();
  lm.MarkAborted(t);
  EXPECT_TRUE(lm.IsAborted(t));
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).IsAborted());
}

TEST(LockManager, MarkAbortedWakesBlockedAcquire) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId holder = lm.Begin(), waiter = lm.Begin();
  ASSERT_TRUE(lm.Acquire(holder, Tuple("r", 1), LockMode::kWa).ok());
  auto result = std::async(std::launch::async, [&] {
    return lm.Acquire(waiter, Tuple("r", 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lm.MarkAborted(waiter);
  EXPECT_TRUE(result.get().IsAborted());
}

// --- deadlocks ------------------------------------------------------------

TEST(LockManager, DeadlockDetected) {
  LockManager lm(FastOptions(LockProtocol::kTwoPhase));
  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kWa).ok());
  ASSERT_TRUE(lm.Acquire(t2, Tuple("r", 2), LockMode::kWa).ok());

  // t1 waits for 2; t2 requesting 1 closes the cycle and must die.
  auto t1_wait = std::async(std::launch::async, [&] {
    return lm.Acquire(t1, Tuple("r", 2), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Status st = lm.Acquire(t2, Tuple("r", 1), LockMode::kWa);
  EXPECT_TRUE(st.IsDeadlock()) << st;
  lm.Release(t2);
  EXPECT_TRUE(t1_wait.get().ok());
  EXPECT_GE(lm.GetStats().deadlocks, 1u);
}

TEST(LockManager, UpgradeDeadlockDetected) {
  // Two Rc holders both upgrading to Wa under 2PL: classic lock-upgrade
  // deadlock.
  LockManager lm(FastOptions(LockProtocol::kTwoPhase));
  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple("r", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(t2, Tuple("r", 1), LockMode::kRc).ok());
  auto t1_wait = std::async(std::launch::async, [&] {
    return lm.Acquire(t1, Tuple("r", 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  Status st = lm.Acquire(t2, Tuple("r", 1), LockMode::kWa);
  EXPECT_TRUE(st.IsDeadlock());
  lm.Release(t2);
  EXPECT_TRUE(t1_wait.get().ok());
}

TEST(LockManager, NoFalseDeadlockOnSharedWait) {
  // Two waiters on the same holder is a chain, not a cycle.
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId holder = lm.Begin(), w1 = lm.Begin(), w2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(holder, Tuple("r", 1), LockMode::kWa).ok());
  auto f1 = std::async(std::launch::async, [&] {
    return lm.Acquire(w1, Tuple("r", 1), LockMode::kRc);
  });
  auto f2 = std::async(std::launch::async, [&] {
    return lm.Acquire(w2, Tuple("r", 1), LockMode::kRc);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lm.Release(holder);
  EXPECT_TRUE(f1.get().ok());
  EXPECT_TRUE(f2.get().ok());
}

// --- release & bookkeeping ---------------------------------------------

TEST(LockManager, ReleaseWakesWaiters) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId holder = lm.Begin(), waiter = lm.Begin();
  ASSERT_TRUE(lm.Acquire(holder, Tuple("r", 1), LockMode::kWa).ok());
  auto pending = std::async(std::launch::async, [&] {
    return lm.Acquire(waiter, Tuple("r", 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lm.Release(holder);
  EXPECT_TRUE(pending.get().ok());
  EXPECT_EQ(lm.live_transactions(), 1u);
}

TEST(LockManager, StatsAccumulate) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId t = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(t, Tuple("r", 2), LockMode::kRa).ok());
  EXPECT_EQ(lm.GetStats().acquired, 2u);
  lm.Release(t);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

TEST(LockManager, TraceEventsEmitted) {
  std::vector<LockEvent::Kind> kinds;
  LockManager::Options options = FastOptions(LockProtocol::kRcRaWa);
  options.trace = [&kinds](const LockEvent& event) {
    kinds.push_back(event.kind);
  };
  LockManager lm(options);
  TxnId t = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).ok());
  lm.MarkAborted(t);
  lm.Release(t);
  ASSERT_EQ(kinds.size(), 3u);
  EXPECT_EQ(kinds[0], LockEvent::Kind::kGrant);
  EXPECT_EQ(kinds[1], LockEvent::Kind::kAbortMark);
  EXPECT_EQ(kinds[2], LockEvent::Kind::kRelease);
}

TEST(LockObjectId, ToStringForms) {
  EXPECT_NE(Tuple("rel-a", 3).ToString().find("#3"), std::string::npos);
  EXPECT_NE(Relation("rel-a").ToString().find("*"), std::string::npos);
  LockObjectId intent{Sym("rel-a"), kInsertLockBase + 2};
  EXPECT_NE(intent.ToString().find("insert"), std::string::npos);
}

TEST(LockManager, ReleaseUnknownTxnIsCountedNoOp) {
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  // A transaction id that was never begun: safe no-op, counted.
  lm.Release(12345);
  EXPECT_EQ(lm.GetStats().unknown_releases, 1u);
  // Double release — e.g. a session tearing down a transaction the
  // engine already rolled back — must also be a safe no-op.
  TxnId t = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).ok());
  lm.Release(t);
  lm.Release(t);
  EXPECT_EQ(lm.GetStats().unknown_releases, 2u);
  EXPECT_EQ(lm.live_transactions(), 0u);
  // A fresh transaction still works after the stray releases.
  TxnId t2 = lm.Begin();
  EXPECT_TRUE(lm.Acquire(t2, Tuple("r", 1), LockMode::kWa).ok());
}

// --- blocking escalation (starvation guarantee) ------------------------

TEST(LockManager, BlockingTxnRcBlocksWaUnderRcRaWa) {
  // A blocking (escalated) transaction's Rc uses the 2PL matrix even
  // under kRcRaWa: a writer's Wa request WAITS instead of being granted
  // over it — so the committer can never victimize the escalated reader.
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId reader = lm.Begin(), writer = lm.Begin();
  lm.SetBlocking(reader);
  EXPECT_TRUE(lm.IsBlocking(reader));
  EXPECT_EQ(lm.GetStats().blocking_txns, 1u);
  ASSERT_TRUE(lm.Acquire(reader, Tuple("r", 1), LockMode::kRc).ok());

  std::atomic<bool> granted{false};
  std::thread blocked([&] {
    EXPECT_TRUE(lm.Acquire(writer, Tuple("r", 1), LockMode::kWa).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());  // Wa-over-Rc grant is suspended
  lm.Release(reader);
  blocked.join();
}

TEST(LockManager, BlockingTxnWaitsBehindOutstandingWa) {
  // Symmetric direction: escalation must not weaken the protocol — an
  // escalated transaction still waits behind an already-granted Wa
  // (Rc-over-Wa is denied in both matrices), it never jumps ahead.
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId writer = lm.Begin(), reader = lm.Begin();
  lm.SetBlocking(reader);
  ASSERT_TRUE(lm.Acquire(writer, Tuple("r", 5), LockMode::kWa).ok());

  std::atomic<bool> granted{false};
  std::thread blocked([&] {
    EXPECT_TRUE(lm.Acquire(reader, Relation("r"), LockMode::kRc).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.Release(writer);
  blocked.join();
}

TEST(LockManager, BlockingHolderIsNeverAVictim) {
  // normal and escalated both hold Rc on the same tuple. The writer's Wa
  // is NOT granted over the mix (the escalated holder forces the 2PL
  // cell), so the writer waits until the escalated reader commits — an
  // escalated firing can never appear in a committer's victim list. The
  // normal Rc holder, released later, is victimized as usual.
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId normal = lm.Begin(), escalated = lm.Begin(), writer = lm.Begin();
  lm.SetBlocking(escalated);
  ASSERT_TRUE(lm.Acquire(normal, Tuple("r", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(escalated, Tuple("r", 1), LockMode::kRc).ok());

  std::atomic<bool> granted{false};
  std::thread blocked([&] {
    EXPECT_TRUE(lm.Acquire(writer, Tuple("r", 1), LockMode::kWa).ok());
    granted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(granted.load());
  lm.Release(escalated);  // the escalated reader commits untouched
  blocked.join();
  // Now the Wa is granted over the remaining (normal) Rc holder, and
  // settlement victimizes exactly that one.
  auto victims = lm.CollectRcVictims(writer);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], normal);
}

// --- injected lock faults ----------------------------------------------

class LockFailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisableAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisableAll(); }
};

TEST_F(LockFailpointTest, InjectedTimeoutSurfacesAsLockTimeout) {
  FailpointSpec spec;
  spec.one_in = 1;
  spec.max_fires = 1;
  FailpointRegistry::Instance().Configure("lock.acquire.timeout", spec);

  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId t = lm.Begin();
  Status st = lm.Acquire(t, Tuple("r", 1), LockMode::kRc);
  EXPECT_TRUE(st.IsLockTimeout()) << st;
  EXPECT_EQ(lm.GetStats().timeouts, 1u);
  // The next acquire (failpoint exhausted) succeeds: spurious timeouts
  // are transient, not sticky.
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 1), LockMode::kRc).ok());
}

TEST_F(LockFailpointTest, InjectedWoundAbortsTheTransaction) {
  FailpointSpec spec;
  spec.one_in = 1;
  spec.max_fires = 1;
  FailpointRegistry::Instance().Configure("lock.acquire.wound", spec);

  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId t = lm.Begin();
  Status st = lm.Acquire(t, Tuple("r", 1), LockMode::kRc);
  EXPECT_TRUE(st.IsAborted()) << st;
  EXPECT_TRUE(lm.IsAborted(t));
  EXPECT_GE(lm.GetStats().wounds, 1u);
  // A wound is sticky for the wounded transaction...
  EXPECT_TRUE(lm.Acquire(t, Tuple("r", 2), LockMode::kRc).IsAborted());
  lm.Release(t);
  // ...but a fresh transaction is unaffected.
  TxnId t2 = lm.Begin();
  EXPECT_TRUE(lm.Acquire(t2, Tuple("r", 1), LockMode::kRc).ok());
}

// --- Figure 4.3 / 4.4 scenarios at the lock level ----------------------

TEST(LockManager, Figure43CommitFirstWins) {
  // Pj holds Rc(q); Pi holds Wa(q). Whoever commits first decides:
  // (a) Pj commits first: it just releases; Pi proceeds — serial PjPi.
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId pj = lm.Begin(), pi = lm.Begin();
  ASSERT_TRUE(lm.Acquire(pj, Tuple("q", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(pi, Tuple("q", 1), LockMode::kWa).ok());

  EXPECT_TRUE(lm.CollectRcVictims(pj).empty());  // Pj has no Wa set
  lm.Release(pj);                                 // Pj commits
  EXPECT_TRUE(lm.CollectRcVictims(pi).empty());  // nobody left to abort
  lm.Release(pi);
}

TEST(LockManager, Figure43CommitSecondAborts) {
  // (b) Pi (the writer) commits first: every Rc holder on q aborts.
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId pj = lm.Begin(), pi = lm.Begin();
  ASSERT_TRUE(lm.Acquire(pj, Tuple("q", 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(pi, Tuple("q", 1), LockMode::kWa).ok());

  auto victims = lm.CollectRcVictims(pi);
  ASSERT_EQ(victims.size(), 1u);
  EXPECT_EQ(victims[0], pj);
  lm.MarkAborted(pj);
  lm.Release(pi);
  EXPECT_TRUE(lm.IsAborted(pj));
}

TEST(LockManager, Figure44CircularConflictOnlyOneSurvives) {
  // Pi: Rc(q), Wa(r).  Pj: Rc(r), Wa(q). No blocking occurs, and the
  // first committer always victimizes the other.
  LockManager lm(FastOptions(LockProtocol::kRcRaWa));
  TxnId pi = lm.Begin(), pj = lm.Begin();
  ASSERT_TRUE(lm.Acquire(pi, Tuple("d", 1), LockMode::kRc).ok());  // q
  ASSERT_TRUE(lm.Acquire(pj, Tuple("d", 2), LockMode::kRc).ok());  // r
  ASSERT_TRUE(lm.Acquire(pi, Tuple("d", 2), LockMode::kWa).ok());  // r
  ASSERT_TRUE(lm.Acquire(pj, Tuple("d", 1), LockMode::kWa).ok());  // q

  auto pi_victims = lm.CollectRcVictims(pi);
  auto pj_victims = lm.CollectRcVictims(pj);
  ASSERT_EQ(pi_victims.size(), 1u);
  ASSERT_EQ(pj_victims.size(), 1u);
  EXPECT_EQ(pi_victims[0], pj);
  EXPECT_EQ(pj_victims[0], pi);
}

}  // namespace
}  // namespace dbps
