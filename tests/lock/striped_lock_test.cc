// Tests specific to the striped lock table: shard routing, cross-shard
// deadlock handling under every policy, Rc-victim sweeps whose Wa set
// straddles shards, per-shard contention counters, and the buffered
// trace-sink contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <future>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "lock/lock_manager.h"

namespace dbps {
namespace {

LockObjectId Tuple(SymbolId relation, WmeId id) {
  return LockObjectId{relation, id};
}
LockObjectId RelationLock(SymbolId relation) {
  return LockObjectId{relation, kRelationLevel};
}

LockManager::Options Opts(LockProtocol protocol, DeadlockPolicy policy,
                          size_t shards = 8) {
  LockManager::Options options;
  options.protocol = protocol;
  options.deadlock_policy = policy;
  options.wait_timeout = std::chrono::milliseconds(2000);
  options.num_shards = shards;
  return options;
}

/// Two relations that hash to DIFFERENT shards of `lm` — so the scenarios
/// below genuinely cross a shard boundary.
std::pair<SymbolId, SymbolId> CrossShardRelations(const LockManager& lm) {
  const SymbolId first = Sym("xshard-rel-0");
  for (int i = 1; i < 1000; ++i) {
    SymbolId candidate = Sym("xshard-rel-" + std::to_string(i));
    if (lm.ShardOf(RelationLock(candidate)) !=
        lm.ShardOf(RelationLock(first))) {
      return {first, candidate};
    }
  }
  ADD_FAILURE() << "no cross-shard relation pair found in 1000 tries";
  return {first, first};
}

// --- shard routing -------------------------------------------------------

TEST(StripedLock, ShardCountIsConfigurableAndClamped) {
  LockManager lm4(Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kDetect, 4));
  EXPECT_EQ(lm4.num_shards(), 4u);
  EXPECT_EQ(lm4.GetStats().shards.size(), 4u);

  LockManager lm0(Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kDetect, 0));
  EXPECT_EQ(lm0.num_shards(), 1u);  // clamped

  // Default shard count follows the hardware: concurrency rounded up to
  // a power of two, never fewer than 8.
  LockManager::Options defaults;
  EXPECT_EQ(defaults.num_shards, DefaultNumLockShards());
  EXPECT_GE(defaults.num_shards, 8u);
  EXPECT_EQ(defaults.num_shards & (defaults.num_shards - 1), 0u);
  EXPECT_GE(defaults.num_shards, std::thread::hardware_concurrency());
}

TEST(StripedLock, AllObjectsOfOneRelationShareAShard) {
  LockManager lm(Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kDetect));
  const SymbolId rel = Sym("routing-rel");
  const size_t shard = lm.ShardOf(RelationLock(rel));
  for (WmeId id = 1; id <= 64; ++id) {
    EXPECT_EQ(lm.ShardOf(Tuple(rel, id)), shard);
  }
  EXPECT_EQ(lm.ShardOf(InsertIntentObject(rel, /*txn=*/7)), shard);
}

TEST(StripedLock, RelationsSpreadAcrossShards) {
  LockManager lm(Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kDetect));
  std::vector<bool> hit(lm.num_shards(), false);
  for (int i = 0; i < 256; ++i) {
    hit[lm.ShardOf(RelationLock(Sym("spread-" + std::to_string(i))))] = true;
  }
  EXPECT_TRUE(std::all_of(hit.begin(), hit.end(), [](bool b) { return b; }))
      << "256 relations left some of " << lm.num_shards()
      << " shards empty — suspicious hash";
}

// --- cross-shard deadlocks ----------------------------------------------
//
// The waits-for graph is global even though the lock table is striped;
// a cycle whose two edges live in two different shards must still be
// detected / prevented / avoided.

TEST(StripedLock, CrossShardDeadlockDetected) {
  LockManager lm(Opts(LockProtocol::kTwoPhase, DeadlockPolicy::kDetect));
  auto [rel_a, rel_b] = CrossShardRelations(lm);

  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple(rel_a, 1), LockMode::kWa).ok());
  ASSERT_TRUE(lm.Acquire(t2, Tuple(rel_b, 1), LockMode::kWa).ok());

  // t1 blocks on t2's object (edge in shard B)...
  auto blocked = std::async(std::launch::async, [&] {
    return lm.Acquire(t1, Tuple(rel_b, 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // ...then t2 requests t1's object (edge in shard A), closing the cycle.
  Status st2 = lm.Acquire(t2, Tuple(rel_a, 1), LockMode::kWa);
  if (st2.IsDeadlock()) {
    // The common order: t1's wait was registered first, so t2's request
    // closed the cycle and t2 is the victim. Its release unblocks t1.
    lm.Release(t2);
    Status st1 = blocked.get();
    EXPECT_TRUE(st1.ok()) << st1.ToString();
  } else {
    // Rare order (t2's request beat t1's block): t1 closed the cycle.
    Status st1 = blocked.get();
    EXPECT_TRUE(st1.IsDeadlock()) << st1.ToString();
    // t2 stays blocked behind t1's surviving Wa hold until the timeout;
    // either outcome is fine — no cycle remains.
    EXPECT_TRUE(st2.ok() || st2.IsLockTimeout()) << st2.ToString();
    lm.Release(t2);
  }
  EXPECT_GE(lm.GetStats().deadlocks, 1u);
  lm.Release(t1);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

TEST(StripedLock, CrossShardDeadlockWoundWait) {
  LockManager lm(Opts(LockProtocol::kTwoPhase, DeadlockPolicy::kWoundWait));
  auto [rel_a, rel_b] = CrossShardRelations(lm);

  TxnId older = lm.Begin(), younger = lm.Begin();
  ASSERT_LT(older, younger);
  ASSERT_TRUE(lm.Acquire(older, Tuple(rel_a, 1), LockMode::kWa).ok());
  ASSERT_TRUE(lm.Acquire(younger, Tuple(rel_b, 1), LockMode::kWa).ok());

  // Younger waits behind older (in wound-wait a younger requester just
  // waits), and rolls back as soon as it is wounded — like a real worker.
  auto younger_wait = std::async(std::launch::async, [&] {
    Status st = lm.Acquire(younger, Tuple(rel_a, 1), LockMode::kWa);
    lm.Release(younger);
    return st;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // The older requester wounds the younger holder across shards, then
  // waits for its release.
  Status older_st = lm.Acquire(older, Tuple(rel_b, 1), LockMode::kWa);

  Status younger_st = younger_wait.get();
  EXPECT_TRUE(younger_st.IsAborted()) << younger_st.ToString();
  EXPECT_TRUE(older_st.ok()) << older_st.ToString();
  EXPECT_GE(lm.GetStats().wounds, 1u);
  lm.Release(older);
  EXPECT_EQ(lm.live_transactions(), 0u);
}

TEST(StripedLock, CrossShardDeadlockNoWait) {
  LockManager lm(Opts(LockProtocol::kTwoPhase, DeadlockPolicy::kNoWait));
  auto [rel_a, rel_b] = CrossShardRelations(lm);

  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple(rel_a, 1), LockMode::kWa).ok());
  ASSERT_TRUE(lm.Acquire(t2, Tuple(rel_b, 1), LockMode::kWa).ok());
  // Both closing requests refuse immediately — no blocking, no cycle.
  EXPECT_TRUE(lm.Acquire(t1, Tuple(rel_b, 1), LockMode::kWa).IsDeadlock());
  EXPECT_TRUE(lm.Acquire(t2, Tuple(rel_a, 1), LockMode::kWa).IsDeadlock());
  lm.Release(t1);
  lm.Release(t2);
}

// --- Rc-victim sweeps straddling shards ---------------------------------

TEST(StripedLock, RcVictimCollectionStraddlesShards) {
  LockManager lm(Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kDetect));
  auto [rel_a, rel_b] = CrossShardRelations(lm);

  // Readers: tuple-level Rc in shard A, tuple-level and relation-level Rc
  // in shard B. One reader (both_reader) appears in both shards — the
  // merged victim set must still name it once.
  TxnId reader_a = lm.Begin(), reader_b = lm.Begin(),
        rel_reader_b = lm.Begin(), both_reader = lm.Begin(),
        bystander = lm.Begin();
  ASSERT_TRUE(lm.Acquire(reader_a, Tuple(rel_a, 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(reader_b, Tuple(rel_b, 2), LockMode::kRc).ok());
  ASSERT_TRUE(
      lm.Acquire(rel_reader_b, RelationLock(rel_b), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(both_reader, Tuple(rel_a, 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(both_reader, Tuple(rel_b, 2), LockMode::kRc).ok());
  // Unrelated tuple: must NOT be victimized.
  ASSERT_TRUE(lm.Acquire(bystander, Tuple(rel_a, 99), LockMode::kRc).ok());

  // The committer's Wa set straddles both shards.
  TxnId writer = lm.Begin();
  ASSERT_TRUE(lm.Acquire(writer, Tuple(rel_a, 1), LockMode::kWa).ok());
  ASSERT_TRUE(lm.Acquire(writer, Tuple(rel_b, 2), LockMode::kWa).ok());

  std::vector<TxnId> victims = lm.CollectRcVictims(writer);
  std::sort(victims.begin(), victims.end());
  EXPECT_EQ(victims, (std::vector<TxnId>{reader_a, reader_b, rel_reader_b,
                                         both_reader}));

  for (TxnId t :
       {reader_a, reader_b, rel_reader_b, both_reader, bystander, writer}) {
    lm.Release(t);
  }
  EXPECT_EQ(lm.live_transactions(), 0u);
}

TEST(StripedLock, PerShardCountersAttributeTraffic) {
  LockManager lm(Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kDetect, 4));
  auto [rel_a, rel_b] = CrossShardRelations(lm);
  const size_t shard_a = lm.ShardOf(RelationLock(rel_a));
  const size_t shard_b = lm.ShardOf(RelationLock(rel_b));

  TxnId t = lm.Begin();
  for (WmeId id = 1; id <= 5; ++id) {
    ASSERT_TRUE(lm.Acquire(t, Tuple(rel_a, id), LockMode::kRc).ok());
  }
  ASSERT_TRUE(lm.Acquire(t, Tuple(rel_b, 1), LockMode::kRc).ok());
  lm.Release(t);

  LockManager::Stats stats = lm.GetStats();
  ASSERT_EQ(stats.shards.size(), 4u);
  // Uncontended tuple Rc grants land on the CAS fast path; per-shard
  // slow `acquires` plus fast grants must still attribute every grant to
  // the right shard and sum to the global count.
  EXPECT_GE(stats.shards[shard_a].acquires + stats.shards[shard_a].fast_path_grants, 5u);
  EXPECT_GE(stats.shards[shard_b].acquires + stats.shards[shard_b].fast_path_grants, 1u);
  uint64_t total = 0;
  for (const auto& shard : stats.shards) {
    total += shard.acquires + shard.fast_path_grants;
  }
  EXPECT_EQ(total, stats.acquired);
  EXPECT_EQ(stats.fast_path_grants, 6u);  // all six grants were fast
}

TEST(StripedLock, ShardWaitCountersCountBlockedAcquires) {
  LockManager lm(Opts(LockProtocol::kTwoPhase, DeadlockPolicy::kDetect));
  const SymbolId rel = Sym("wait-counter-rel");
  const size_t shard = lm.ShardOf(RelationLock(rel));

  TxnId holder = lm.Begin(), waiter = lm.Begin();
  ASSERT_TRUE(lm.Acquire(holder, Tuple(rel, 1), LockMode::kWa).ok());
  auto blocked = std::async(std::launch::async, [&] {
    return lm.Acquire(waiter, Tuple(rel, 1), LockMode::kWa);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  lm.Release(holder);
  ASSERT_TRUE(blocked.get().ok());
  lm.Release(waiter);

  EXPECT_GE(lm.GetStats().shards[shard].waits, 1u);
  EXPECT_GE(lm.GetStats().blocked, 1u);
}

// --- trace sink contract -------------------------------------------------
//
// Events are buffered inside the manager's critical sections and emitted
// only after every internal lock is dropped, so a sink may call straight
// back into the manager. Before the striping refactor this deadlocked
// (the sink ran under the global table mutex) — regression coverage.

TEST(StripedLock, TraceSinkMayReenterTheManager) {
  LockManager* manager = nullptr;
  std::mutex sink_mu;
  std::vector<LockEvent> events;

  LockManager::Options options =
      Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kDetect);
  options.trace = [&](const LockEvent& event) {
    // Reentrancy: query the manager from inside the sink.
    if (manager != nullptr) {
      (void)manager->IsAborted(event.txn);
      (void)manager->Holds(event.txn, event.object, event.mode);
      (void)manager->GetStats();
    }
    std::lock_guard<std::mutex> lock(sink_mu);
    events.push_back(event);
  };
  LockManager lm(options);
  manager = &lm;

  TxnId t1 = lm.Begin(), t2 = lm.Begin();
  ASSERT_TRUE(lm.Acquire(t1, Tuple(Sym("trace-rel"), 1), LockMode::kRc).ok());
  ASSERT_TRUE(lm.Acquire(t2, Tuple(Sym("trace-rel"), 1), LockMode::kWa).ok());
  for (TxnId victim : lm.CollectRcVictims(t2)) lm.MarkAborted(victim);
  lm.Release(t1);
  lm.Release(t2);

  std::lock_guard<std::mutex> lock(sink_mu);
  auto count = [&](LockEvent::Kind kind) {
    return std::count_if(events.begin(), events.end(),
                         [&](const LockEvent& e) { return e.kind == kind; });
  };
  EXPECT_EQ(count(LockEvent::Kind::kGrant), 2);
  EXPECT_EQ(count(LockEvent::Kind::kAbortMark), 1);
  EXPECT_EQ(count(LockEvent::Kind::kRelease), 2);
}

/// Hammer one manager from many threads with the reentrant sink attached:
/// under TSan this is the no-lock-held-at-emission proof.
TEST(StripedLock, ConcurrentTrafficWithReentrantSink) {
  LockManager* manager = nullptr;
  std::atomic<uint64_t> observed{0};

  LockManager::Options options =
      Opts(LockProtocol::kRcRaWa, DeadlockPolicy::kNoWait);
  options.trace = [&](const LockEvent& event) {
    if (manager != nullptr) (void)manager->IsAborted(event.txn);
    observed.fetch_add(1, std::memory_order_relaxed);
  };
  LockManager lm(options);
  manager = &lm;

  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 50;
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      for (int op = 0; op < kOpsPerThread; ++op) {
        TxnId txn = lm.Begin();
        SymbolId rel = Sym("hammer-" + std::to_string(op % 7));
        (void)lm.Acquire(txn, Tuple(rel, op % 5), LockMode::kRc);
        if ((op + i) % 3 == 0) {
          if (lm.Acquire(txn, Tuple(rel, op % 5), LockMode::kWa).ok()) {
            for (TxnId victim : lm.CollectRcVictims(txn)) {
              lm.MarkAborted(victim);
            }
          }
        }
        lm.Release(txn);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(lm.live_transactions(), 0u);
  EXPECT_GT(observed.load(), 0u);
}

}  // namespace
}  // namespace dbps
