#include <gtest/gtest.h>

#include "match/conflict_set.h"
#include "wm/working_memory.h"

namespace dbps {
namespace {

RulePtr MakeRule(const std::string& name, int priority = 0,
                 size_t num_tests = 0) {
  Condition cond;
  cond.relation = Sym("thing");
  for (size_t i = 0; i < num_tests; ++i) {
    cond.constant_tests.push_back(
        ConstantTest{0, TestPredicate::kGe, Value::Int(0)});
  }
  auto rule = std::make_shared<Rule>(
      name, std::vector<Condition>{cond},
      std::vector<Action>{RemoveAction{0}});
  rule->set_priority(priority);
  return rule;
}

WmePtr MakeWme(WmeId id, TimeTag tag) {
  return std::make_shared<const Wme>(id, tag, Sym("thing"),
                                     std::vector<Value>{Value::Int(0)});
}

InstPtr MakeInst(const RulePtr& rule, WmeId id, TimeTag tag) {
  return std::make_shared<Instantiation>(
      rule, std::vector<WmePtr>{MakeWme(id, tag)});
}

TEST(Instantiation, KeyIdentity) {
  RulePtr rule = MakeRule("r");
  InstPtr a = MakeInst(rule, 1, 10);
  InstPtr b = MakeInst(rule, 1, 10);
  InstPtr c = MakeInst(rule, 1, 11);  // same WME, newer version
  EXPECT_EQ(a->key(), b->key());
  EXPECT_FALSE(a->key() == c->key());
  EXPECT_EQ(InstKeyHash{}(a->key()), InstKeyHash{}(b->key()));
  EXPECT_EQ(a->RecencyTag(), 10u);
}

TEST(ConflictSet, ActivateDeactivateContains) {
  ConflictSet cs;
  RulePtr rule = MakeRule("r");
  InstPtr inst = MakeInst(rule, 1, 1);
  EXPECT_TRUE(cs.empty());
  cs.Activate(inst);
  EXPECT_TRUE(cs.Contains(inst->key()));
  EXPECT_EQ(cs.size(), 1u);
  cs.Activate(inst);  // idempotent
  EXPECT_EQ(cs.size(), 1u);
  cs.Deactivate(inst->key());
  EXPECT_FALSE(cs.Contains(inst->key()));
  cs.Deactivate(inst->key());  // no-op
}

TEST(ConflictSet, ClaimRemovesFromSelectable) {
  ConflictSet cs;
  RulePtr rule = MakeRule("r");
  cs.Activate(MakeInst(rule, 1, 1));
  cs.Activate(MakeInst(rule, 2, 2));
  Random rng(1);

  InstPtr first = cs.Claim(ConflictResolution::kLex, &rng);
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(cs.num_claimed(), 1u);
  EXPECT_TRUE(cs.HasSelectable());

  InstPtr second = cs.Claim(ConflictResolution::kLex, &rng);
  ASSERT_NE(second, nullptr);
  EXPECT_FALSE(first->key() == second->key());
  EXPECT_FALSE(cs.HasSelectable());
  EXPECT_EQ(cs.Claim(ConflictResolution::kLex, &rng), nullptr);
}

TEST(ConflictSet, UnclaimMakesSelectableAgain) {
  ConflictSet cs;
  cs.Activate(MakeInst(MakeRule("r"), 1, 1));
  Random rng(1);
  InstPtr inst = cs.Claim(ConflictResolution::kLex, &rng);
  ASSERT_NE(inst, nullptr);
  cs.Unclaim(inst->key());
  EXPECT_TRUE(cs.HasSelectable());
  EXPECT_NE(cs.Claim(ConflictResolution::kLex, &rng), nullptr);
}

TEST(ConflictSet, MarkFiredRemovesEntirely) {
  ConflictSet cs;
  InstPtr inst = MakeInst(MakeRule("r"), 1, 1);
  cs.Activate(inst);
  Random rng(1);
  cs.Claim(ConflictResolution::kLex, &rng);
  cs.MarkFired(inst->key());
  EXPECT_TRUE(cs.empty());
  EXPECT_EQ(cs.num_claimed(), 0u);
}

TEST(ConflictSet, DeactivateClaimedInstantiation) {
  // A committer invalidating a claimed instantiation removes it from both
  // the active and claimed sets.
  ConflictSet cs;
  InstPtr inst = MakeInst(MakeRule("r"), 1, 1);
  cs.Activate(inst);
  Random rng(1);
  cs.Claim(ConflictResolution::kLex, &rng);
  cs.Deactivate(inst->key());
  EXPECT_FALSE(cs.Contains(inst->key()));
  EXPECT_EQ(cs.num_claimed(), 0u);
}

TEST(ConflictSet, SnapshotsDistinguishClaimed) {
  ConflictSet cs;
  cs.Activate(MakeInst(MakeRule("r"), 1, 1));
  cs.Activate(MakeInst(MakeRule("r"), 2, 2));
  Random rng(1);
  cs.Claim(ConflictResolution::kLex, &rng);
  EXPECT_EQ(cs.Snapshot().size(), 2u);
  EXPECT_EQ(cs.SelectableSnapshot().size(), 1u);
}

// --- conflict resolution strategies --------------------------------------

TEST(ConflictResolution, LexPrefersRecency) {
  RulePtr rule = MakeRule("r");
  InstPtr old_inst = MakeInst(rule, 1, 5);
  InstPtr new_inst = MakeInst(rule, 2, 9);
  EXPECT_TRUE(LexDominates(*new_inst, *old_inst));
  EXPECT_FALSE(LexDominates(*old_inst, *new_inst));
}

TEST(ConflictResolution, LexBreaksTiesBySpecificity) {
  RulePtr plain = MakeRule("plain", 0, 0);
  RulePtr fussy = MakeRule("fussy", 0, 3);
  InstPtr a = MakeInst(plain, 1, 5);
  InstPtr b = MakeInst(fussy, 1, 5);
  EXPECT_TRUE(LexDominates(*b, *a));
}

TEST(ConflictResolution, MeaPrefersFirstCeRecency) {
  Condition thing_cond;
  thing_cond.relation = Sym("thing");
  RulePtr rule2 = std::make_shared<Rule>(
      "two", std::vector<Condition>{thing_cond, thing_cond},
      std::vector<Action>{RemoveAction{0}});
  // a: first CE tag 9, second 1.  b: first CE tag 5, second 20.
  auto a = std::make_shared<Instantiation>(
      rule2, std::vector<WmePtr>{MakeWme(1, 9), MakeWme(2, 1)});
  auto b = std::make_shared<Instantiation>(
      rule2, std::vector<WmePtr>{MakeWme(3, 5), MakeWme(4, 20)});
  EXPECT_TRUE(MeaDominates(*a, *b));   // MEA: 9 > 5 on the first CE
  EXPECT_TRUE(LexDominates(*b, *a));   // LEX: overall recency 20 > 9
}

TEST(ConflictResolution, PriorityWins) {
  ConflictSet cs;
  cs.Activate(MakeInst(MakeRule("low", 1), 1, 100));
  InstPtr high = MakeInst(MakeRule("high", 9), 2, 1);
  cs.Activate(high);
  Random rng(1);
  InstPtr selected = cs.Claim(ConflictResolution::kPriority, &rng);
  ASSERT_NE(selected, nullptr);
  EXPECT_EQ(selected->rule()->name(), "high");
}

TEST(ConflictResolution, FifoPrefersOldestActivation) {
  ConflictSet cs;
  InstPtr first = MakeInst(MakeRule("r"), 1, 50);
  cs.Activate(first);
  cs.Activate(MakeInst(MakeRule("r"), 2, 1));
  Random rng(1);
  InstPtr selected = cs.Claim(ConflictResolution::kFifo, &rng);
  EXPECT_EQ(selected->key(), first->key());
}

TEST(ConflictResolution, RandomIsSeedDeterministic) {
  auto run = [](uint64_t seed) {
    ConflictSet cs;
    RulePtr rule = MakeRule("r");
    for (WmeId i = 1; i <= 10; ++i) cs.Activate(MakeInst(rule, i, i));
    Random rng(seed);
    std::vector<std::string> order;
    while (InstPtr inst = cs.Claim(ConflictResolution::kRandom, &rng)) {
      order.push_back(inst->key().ToString());
      cs.MarkFired(inst->key());
    }
    return order;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // overwhelmingly likely
}

TEST(ConflictResolution, SelectDominantEmpty) {
  Random rng(1);
  EXPECT_EQ(SelectDominant({}, ConflictResolution::kLex, &rng), nullptr);
}

}  // namespace
}  // namespace dbps
