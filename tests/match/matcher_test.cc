// Behavioural tests run against BOTH matcher implementations through the
// common Matcher interface (value-parameterized), so the naive oracle and
// the Rete network are held to the identical contract.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "lang/compiler.h"
#include "match/matcher.h"
#include "match/naive_matcher.h"
#include "match/rete.h"

namespace dbps {
namespace {

class MatcherTest : public ::testing::TestWithParam<MatcherKind> {
 protected:
  std::unique_ptr<Matcher> NewMatcher() { return CreateMatcher(GetParam()); }

  /// Applies one delta to the WM and feeds the change to the matcher.
  void Apply(WorkingMemory* wm, Matcher* matcher, const Delta& delta) {
    auto change = wm->Apply(delta);
    ASSERT_TRUE(change.ok()) << change.status();
    matcher->ApplyChange(change.ValueOrDie());
  }

  std::multiset<std::string> RuleNames(const Matcher& matcher) {
    std::multiset<std::string> names;
    for (const auto& inst : matcher.conflict_set().Snapshot()) {
      names.insert(inst->rule()->name());
    }
    return names;
  }
};

TEST_P(MatcherTest, InitialContentsAreMatched) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (v int))
(rule big (item ^v { > 10 }) --> (remove 1))
(make item ^v 5)
(make item ^v 15)
(make item ^v 20)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  EXPECT_EQ(matcher->conflict_set().size(), 2u);
}

TEST_P(MatcherTest, IncrementalAddAndRemove) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (v int))
(rule any (item ^v <v>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  EXPECT_EQ(matcher->conflict_set().size(), 0u);

  Delta add;
  add.Create(Sym("item"), {Value::Int(1)});
  add.Create(Sym("item"), {Value::Int(2)});
  Apply(&wm, matcher.get(), add);
  EXPECT_EQ(matcher->conflict_set().size(), 2u);

  WmeId first = wm.Scan(Sym("item"))[0]->id();
  Delta remove;
  remove.Delete(first);
  Apply(&wm, matcher.get(), remove);
  EXPECT_EQ(matcher->conflict_set().size(), 1u);
}

TEST_P(MatcherTest, JoinOnSharedVariable) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation a (x symbol))
(relation b (x symbol))
(rule pair (a ^x <k>) (b ^x <k>) --> (remove 1))
(make a ^x p)
(make a ^x q)
(make b ^x q)
(make b ^x r)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  // Only (a q, b q) joins.
  ASSERT_EQ(matcher->conflict_set().size(), 1u);
  auto inst = matcher->conflict_set().Snapshot()[0];
  EXPECT_EQ(inst->matched()[0]->value(0), Value::Symbol("q"));
  EXPECT_EQ(inst->matched()[1]->value(0), Value::Symbol("q"));
}

TEST_P(MatcherTest, CrossProductCounts) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation a (x int))
(relation b (x int))
(rule all (a ^x <i>) (b ^x <j>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  Delta delta;
  for (int i = 0; i < 3; ++i) delta.Create(Sym("a"), {Value::Int(i)});
  for (int j = 0; j < 4; ++j) delta.Create(Sym("b"), {Value::Int(j)});
  Apply(&wm, matcher.get(), delta);
  EXPECT_EQ(matcher->conflict_set().size(), 12u);
}

TEST_P(MatcherTest, SameRelationTwiceInOneRule) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation n (v int))
(rule ordered (n ^v <a>) (n ^v { > <a> }) --> (remove 1))
(make n ^v 1)
(make n ^v 2)
(make n ^v 3)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  // Ordered pairs: (1,2) (1,3) (2,3).
  EXPECT_EQ(matcher->conflict_set().size(), 3u);
}

TEST_P(MatcherTest, IntraWmeTest) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation edge (from symbol) (to symbol))
(rule self-loop (edge ^from <x> ^to <x>) --> (remove 1))
(make edge ^from a ^to b)
(make edge ^from c ^to c)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  ASSERT_EQ(matcher->conflict_set().size(), 1u);
  EXPECT_EQ(matcher->conflict_set().Snapshot()[0]->matched()[0]->value(0),
            Value::Symbol("c"));
}

TEST_P(MatcherTest, NegationBlocksAndUnblocks) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation goal (name symbol))
(relation lock (name symbol))
(rule go (goal ^name <g>) -(lock ^name <g>) --> (remove 1))
(make goal ^name alpha)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  EXPECT_EQ(matcher->conflict_set().size(), 1u);

  // Adding a matching lock deactivates the instantiation...
  Delta block;
  block.Create(Sym("lock"), {Value::Symbol("alpha")});
  Apply(&wm, matcher.get(), block);
  EXPECT_EQ(matcher->conflict_set().size(), 0u);

  // ...an unrelated lock does not...
  Delta unrelated;
  unrelated.Create(Sym("lock"), {Value::Symbol("beta")});
  Apply(&wm, matcher.get(), unrelated);
  EXPECT_EQ(matcher->conflict_set().size(), 0u);

  // ...and removing the blocker reactivates it.
  WmeId blocker = 0;
  for (const auto& wme : wm.Scan(Sym("lock"))) {
    if (wme->value(0) == Value::Symbol("alpha")) blocker = wme->id();
  }
  Delta unblock;
  unblock.Delete(blocker);
  Apply(&wm, matcher.get(), unblock);
  EXPECT_EQ(matcher->conflict_set().size(), 1u);
}

TEST_P(MatcherTest, NegationPresentFromTheStart) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation goal (name symbol))
(relation lock (name symbol))
(rule go (goal ^name <g>) -(lock ^name <g>) --> (remove 1))
(make goal ^name alpha)
(make goal ^name beta)
(make lock ^name alpha)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  ASSERT_EQ(matcher->conflict_set().size(), 1u);
  EXPECT_EQ(matcher->conflict_set().Snapshot()[0]->matched()[0]->value(0),
            Value::Symbol("beta"));
}

TEST_P(MatcherTest, DoublyBlockedNeedsBothRemoved) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation goal (name symbol))
(relation lock (name symbol))
(rule go (goal ^name <g>) -(lock ^name <g>) --> (remove 1))
(make goal ^name alpha)
(make lock ^name alpha)
(make lock ^name alpha)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  EXPECT_EQ(matcher->conflict_set().size(), 0u);

  auto locks = wm.Scan(Sym("lock"));
  Delta remove_one;
  remove_one.Delete(locks[0]->id());
  Apply(&wm, matcher.get(), remove_one);
  EXPECT_EQ(matcher->conflict_set().size(), 0u);  // still one blocker left

  Delta remove_two;
  remove_two.Delete(locks[1]->id());
  Apply(&wm, matcher.get(), remove_two);
  EXPECT_EQ(matcher->conflict_set().size(), 1u);
}

TEST_P(MatcherTest, ModifyRetractsOldVersionAndAssertsNew) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (v int))
(rule big (item ^v { > 10 }) --> (remove 1))
(make item ^v 5)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  EXPECT_EQ(matcher->conflict_set().size(), 0u);

  WmeId id = wm.Scan(Sym("item"))[0]->id();
  Delta up;
  up.Modify(id, {{0, Value::Int(20)}});
  Apply(&wm, matcher.get(), up);
  ASSERT_EQ(matcher->conflict_set().size(), 1u);
  TimeTag tag_after_up =
      matcher->conflict_set().Snapshot()[0]->matched()[0]->tag();

  // Modifying again (still >10) yields a *new* instantiation key.
  Delta up2;
  up2.Modify(id, {{0, Value::Int(30)}});
  Apply(&wm, matcher.get(), up2);
  ASSERT_EQ(matcher->conflict_set().size(), 1u);
  EXPECT_GT(matcher->conflict_set().Snapshot()[0]->matched()[0]->tag(),
            tag_after_up);

  Delta down;
  down.Modify(id, {{0, Value::Int(1)}});
  Apply(&wm, matcher.get(), down);
  EXPECT_EQ(matcher->conflict_set().size(), 0u);
}

TEST_P(MatcherTest, MultipleRulesShareWorkingMemory) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (v int))
(rule small (item ^v { <= 5 }) --> (remove 1))
(rule big   (item ^v { > 5 })  --> (remove 1))
(rule all   (item ^v <v>)      --> (remove 1))
(make item ^v 3)
(make item ^v 8)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  auto names = RuleNames(*matcher);
  EXPECT_EQ(names.count("small"), 1u);
  EXPECT_EQ(names.count("big"), 1u);
  EXPECT_EQ(names.count("all"), 2u);
}

TEST_P(MatcherTest, ThreeWayJoin) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation a (k symbol) (v int))
(relation b (k symbol) (v int))
(relation c (k symbol) (v int))
(rule chain
  (a ^k <k> ^v <x>)
  (b ^k <k> ^v { > <x> })
  (c ^k <k> ^v { > <x> })
  -->
  (remove 1))
(make a ^k key ^v 1)
(make b ^k key ^v 2)
(make b ^k key ^v 0)
(make c ^k key ^v 5)
(make c ^k other ^v 9)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = NewMatcher();
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  // (a key 1) x (b key 2) x (c key 5) only.
  EXPECT_EQ(matcher->conflict_set().size(), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllMatchers, MatcherTest,
                         ::testing::Values(MatcherKind::kRete,
                                           MatcherKind::kNaive,
                                           MatcherKind::kTreat),
                         [](const auto& info) {
                           return std::string(
                               MatcherKindToString(info.param));
                         });

// --- Rete-specific structural tests ------------------------------------

TEST(Rete, SharesAlphaMemories) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (v int))
(rule r1 (item ^v { > 10 }) --> (remove 1))
(rule r2 (item ^v { > 10 }) (item ^v { > 10 }) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  ReteMatcher matcher;
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  auto stats = matcher.GetStats();
  // One shared alpha memory for the identical CE across both rules.
  EXPECT_EQ(stats.alpha_memories, 1u);
  EXPECT_EQ(stats.production_nodes, 2u);
  EXPECT_EQ(stats.join_nodes, 3u);
}

TEST(Rete, SharedAlphaMemoryNoDuplicateMatches) {
  // The classic duplicate-match hazard: one WME feeding both CEs of the
  // same rule through one shared alpha memory.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (v int))
(rule pair (item ^v <a>) (item ^v <b>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  ReteMatcher matcher;
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  Delta delta;
  delta.Create(Sym("item"), {Value::Int(1)});
  auto change = wm.Apply(delta);
  ASSERT_TRUE(change.ok());
  matcher.ApplyChange(change.ValueOrDie());
  // Exactly one match: (w1, w1).
  EXPECT_EQ(matcher.conflict_set().size(), 1u);

  Delta second;
  second.Create(Sym("item"), {Value::Int(2)});
  change = wm.Apply(second);
  ASSERT_TRUE(change.ok());
  matcher.ApplyChange(change.ValueOrDie());
  // (w1,w1) (w1,w2) (w2,w1) (w2,w2).
  EXPECT_EQ(matcher.conflict_set().size(), 4u);
}

TEST(Rete, TokensAreReclaimedOnRemoval) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (v int))
(rule pair (item ^v <a>) (item ^v <b>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  ReteMatcher matcher;
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  size_t base_tokens = matcher.GetStats().tokens;

  Delta add;
  for (int i = 0; i < 5; ++i) add.Create(Sym("item"), {Value::Int(i)});
  auto change = wm.Apply(add);
  ASSERT_TRUE(change.ok());
  matcher.ApplyChange(change.ValueOrDie());
  EXPECT_EQ(matcher.conflict_set().size(), 25u);
  EXPECT_GT(matcher.GetStats().tokens, base_tokens);

  Delta remove;
  for (const auto& wme : wm.Scan(Sym("item"))) remove.Delete(wme->id());
  change = wm.Apply(remove);
  ASSERT_TRUE(change.ok());
  matcher.ApplyChange(change.ValueOrDie());
  EXPECT_EQ(matcher.conflict_set().size(), 0u);
  EXPECT_EQ(matcher.GetStats().tokens, base_tokens);
  EXPECT_EQ(matcher.GetStats().wmes, 0u);
}

TEST(Rete, ToDotRendersNetwork) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation a (x int))
(rule r (a ^x <x>) -(a ^x { > <x> }) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  ReteMatcher matcher;
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  std::string dot = matcher.ToDot();
  EXPECT_NE(dot.find("digraph rete"), std::string::npos);
  EXPECT_NE(dot.find("neg"), std::string::npos);
  EXPECT_NE(dot.find("prod"), std::string::npos);
}

}  // namespace
}  // namespace dbps
