// PartitionedMatcher differential + stress tests.
//
// The core property: a PartitionedMatcher over any (partitions, workers,
// inner algorithm) combination reaches a conflict set that dumps
// byte-identically to the unpartitioned serial matcher after EVERY batch
// of a randomized multi-relation workload — including the serial ablation
// (num_workers == 1), cross-partition joins (handoffs), and single-
// relation skew. A TSan-targeted stress test additionally hammers the
// shared conflict set with concurrent Claim/Contains readers while
// batches propagate, which is exactly the engine's access pattern.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "dbps.h"
#include "match/partitioned_matcher.h"

namespace dbps {
namespace {

// Four relations, rules that join across them (fill, shipped) and rules
// local to one relation (low, watch) — so routing exercises both the
// home-partition path and cross-partition handoffs.
constexpr const char* kWorkloadProgram = R"(
(relation order (id int) (qty int))
(relation stock (id int) (qty int))
(relation ship (id int))
(relation alert (id int))

(rule fill
  (order ^id <i> ^qty <q>)
  (stock ^id <i> ^qty { > 0 })
  -->
  (remove 1))

(rule low
  (stock ^id <i> ^qty { < 2 })
  -->
  (remove 1))

(rule shipped
  (ship ^id <i>)
  (order ^id <i> ^qty <q>)
  -->
  (remove 1))

(rule watch
  (alert ^id <i>)
  -->
  (remove 1))
)";

/// One randomized batch against `wm`: a single multi-op delta (creates,
/// deletes, modifies over distinct WMEs), applied to the WM and returned
/// as the engine-shaped change list.
std::vector<WmChange> RandomBatch(WorkingMemory* wm, Random* rng) {
  Delta delta;
  const size_t ops = 1 + rng->Uniform(5);
  std::vector<WmeId> touched;
  auto untouched = [&](WmeId id) {
    for (WmeId t : touched) {
      if (t == id) return false;
    }
    return true;
  };
  for (size_t op = 0; op < ops; ++op) {
    switch (rng->Uniform(4)) {
      case 0:
        delta.Create(Sym("order"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(8))),
                      Value::Int(static_cast<int64_t>(rng->Uniform(5)))});
        break;
      case 1:
        delta.Create(Sym("stock"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(8))),
                      Value::Int(static_cast<int64_t>(rng->Uniform(4)))});
        break;
      case 2: {
        const SymbolId rel = rng->Uniform(2) == 0 ? Sym("ship") : Sym("alert");
        delta.Create(rel,
                     {Value::Int(static_cast<int64_t>(rng->Uniform(8)))});
        break;
      }
      case 3: {
        // Delete or modify one existing row (skipping rows this batch
        // already touched — commit batches are pairwise disjoint).
        const SymbolId rel = rng->Uniform(2) == 0 ? Sym("order") : Sym("stock");
        auto rows = wm->Scan(rel);
        if (rows.empty()) break;
        const WmePtr& row = rows[rng->Uniform(rows.size())];
        if (!untouched(row->id())) break;
        touched.push_back(row->id());
        if (rng->Uniform(3) == 0 && rel == Sym("stock")) {
          delta.Modify(row->id(),
                       {{1, Value::Int(static_cast<int64_t>(
                                rng->Uniform(6)))}});
        } else {
          delta.Delete(row->id());
        }
        break;
      }
    }
  }
  auto change_or = wm->Apply(delta);
  DBPS_CHECK(change_or.ok()) << change_or.status();
  return {std::move(change_or).ValueOrDie()};
}

class PartitionedEquivalenceTest
    : public ::testing::TestWithParam<std::tuple<MatcherKind, size_t>> {};

// The differential gate, unit-sized: serial matcher and partitioned
// matcher consume the identical change stream; their conflict sets must
// dump byte-identically after initialization and after every batch.
TEST_P(PartitionedEquivalenceTest, MatchesSerialByteForByte) {
  const MatcherKind kind = std::get<0>(GetParam());
  const size_t workers = std::get<1>(GetParam());

  WorkingMemory wm;
  auto rules = LoadProgram(kWorkloadProgram, &wm).ValueOrDie();
  // Pre-populate so initialization is non-trivial.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        wm.Insert("order", {Value::Int(i), Value::Int(i % 3)}).ok());
    ASSERT_TRUE(
        wm.Insert("stock", {Value::Int(i), Value::Int((i + 1) % 4)}).ok());
  }

  auto serial = CreateMatcher(kind);
  ASSERT_TRUE(serial->Initialize(rules, wm).ok());

  PartitionedMatcher::Options options;
  options.num_partitions = 4;
  options.num_workers = workers;
  options.inner = kind;
  PartitionedMatcher partitioned(options);
  ASSERT_TRUE(partitioned.Initialize(rules, wm).ok());

  EXPECT_EQ(serial->conflict_set().CanonicalDump(),
            partitioned.conflict_set().CanonicalDump());

  Random rng(1234 + static_cast<uint64_t>(kind) * 100 + workers);
  for (int batch = 0; batch < 60; ++batch) {
    const std::vector<WmChange> changes = RandomBatch(&wm, &rng);
    serial->ApplyChanges(changes);
    partitioned.ApplyChanges(changes);
    ASSERT_EQ(serial->conflict_set().CanonicalDump(),
              partitioned.conflict_set().CanonicalDump())
        << "diverged at batch " << batch << " (" << MatcherKindToString(kind)
        << ", " << workers << " workers)";
  }

  const PartitionedMatcher::Stats stats = partitioned.GetStats();
  EXPECT_EQ(stats.batches, 60u);
  EXPECT_GT(stats.morsels, 0u);
  // `fill` and `shipped` join relations that may be homed elsewhere;
  // handoffs occur whenever two joined relations hash to different
  // partitions (relation-name dependent, so only assert consistency).
  uint64_t per_partition_routed = 0;
  for (const auto& p : stats.partitions) per_partition_routed += p.wmes_routed;
  EXPECT_GT(per_partition_routed, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllInnerKinds, PartitionedEquivalenceTest,
    ::testing::Combine(::testing::Values(MatcherKind::kRete,
                                         MatcherKind::kTreat),
                       ::testing::Values(size_t{1}, size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<MatcherKind, size_t>>& info) {
      return std::string(MatcherKindToString(std::get<0>(info.param))) +
             "_w" + std::to_string(std::get<1>(info.param));
    });

// The in-process shadow check (the chaos trials' differential) agrees
// with itself: a full random run under shadow_check never trips.
TEST(PartitionedMatcherShadowTest, ShadowStaysClean) {
  WorkingMemory wm;
  auto rules = LoadProgram(kWorkloadProgram, &wm).ValueOrDie();
  // Pre-populate: the shadow must also track activations captured during
  // initialization, not just post-init batches.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(wm.Insert("order", {Value::Int(i), Value::Int(2)}).ok());
    ASSERT_TRUE(wm.Insert("stock", {Value::Int(i), Value::Int(1)}).ok());
  }
  PartitionedMatcher::Options options;
  options.num_partitions = 8;
  options.num_workers = 2;
  options.shadow_check = true;
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  Random rng(99);
  for (int batch = 0; batch < 40; ++batch) {
    matcher.ApplyChanges(RandomBatch(&wm, &rng));
    ASSERT_TRUE(matcher.shadow_status().ok()) << matcher.shadow_status();
  }
}

// Skew: a workload touching ONE relation routes every WME to a single
// partition — one morsel per batch, no handoffs, top skew bin — i.e. the
// partitioned matcher degrades to exactly the serial matcher's work, not
// worse (plus the merge replay, which is O(events)).
TEST(PartitionedMatcherSkewTest, SingleRelationDegradesToSerial) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation hot (id int) (v int))
(rule hot-high (hot ^id <i> ^v { > 5 }) --> (remove 1))
(rule hot-low (hot ^id <i> ^v { < 2 }) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  PartitionedMatcher::Options options;
  options.num_partitions = 8;
  options.num_workers = 4;
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());

  auto serial = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(serial->Initialize(rules, wm).ok());

  Random rng(7);
  for (int batch = 0; batch < 20; ++batch) {
    Delta delta;
    for (int i = 0; i < 4; ++i) {
      delta.Create(Sym("hot"),
                   {Value::Int(static_cast<int64_t>(rng.Uniform(100))),
                    Value::Int(static_cast<int64_t>(rng.Uniform(10)))});
    }
    auto change_or = wm.Apply(delta);
    ASSERT_TRUE(change_or.ok());
    std::vector<WmChange> changes{std::move(change_or).ValueOrDie()};
    serial->ApplyChanges(changes);
    matcher.ApplyChanges(changes);
    ASSERT_EQ(serial->conflict_set().CanonicalDump(),
              matcher.conflict_set().CanonicalDump());
  }

  const PartitionedMatcher::Stats stats = matcher.GetStats();
  EXPECT_EQ(stats.batches, 20u);
  // All work in the home partition: one morsel per batch, nothing else.
  EXPECT_EQ(stats.morsels, stats.batches);
  EXPECT_EQ(stats.handoffs, 0u);
  const size_t home = matcher.PartitionOfRelation(Sym("hot"));
  for (size_t p = 0; p < stats.partitions.size(); ++p) {
    if (p == home) {
      EXPECT_GT(stats.partitions[p].wmes_routed, 0u);
    } else {
      EXPECT_EQ(stats.partitions[p].wmes_routed, 0u);
    }
  }
  // Every batch lands in the 90-100% max-share bin.
  EXPECT_EQ(stats.skew_histogram[9], 20u);
}

// Routing invariants: the partition function is stable, bounded, and the
// same for every call (it mirrors the lock manager's shard mix).
TEST(PartitionedMatcherTest, PartitionOfRelationIsStable) {
  WorkingMemory wm;
  auto rules = LoadProgram(kWorkloadProgram, &wm).ValueOrDie();
  PartitionedMatcher::Options options;
  options.num_partitions = 8;
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  for (const char* name : {"order", "stock", "ship", "alert"}) {
    const size_t p = matcher.PartitionOfRelation(Sym(name));
    EXPECT_LT(p, matcher.num_partitions());
    EXPECT_EQ(p, matcher.PartitionOfRelation(Sym(name)));
  }
}

// TSan stress: engine workers Claim/Contains/Snapshot the shared conflict
// set concurrently with morsel-parallel propagation — a hot partition
// (every batch hits `hot`) plus a cross-partition rule, the shape the
// tentpole's data-race surface actually has. Run under
// -fsanitize=thread to verify; the assertions hold regardless.
TEST(PartitionedMatcherStressTest, ConcurrentReadersDuringPropagation) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation hot (id int) (v int))
(relation cold (id int))
(rule pair (hot ^id <i> ^v <v>) (cold ^id <i>) --> (remove 1))
(rule spike (hot ^id <i> ^v { > 7 }) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  PartitionedMatcher::Options options;
  options.num_partitions = 4;
  options.num_workers = 4;
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Random rng(500 + r);
      ConflictSet& cs = matcher.conflict_set();
      while (!stop.load(std::memory_order_acquire)) {
        InstPtr claimed = cs.Claim(ConflictResolution::kPriority, &rng);
        if (claimed != nullptr) {
          cs.Contains(claimed->key());
          cs.Unclaim(claimed->key());
        }
        (void)cs.Snapshot();
        (void)cs.size();
      }
    });
  }

  Random rng(41);
  for (int batch = 0; batch < 80; ++batch) {
    Delta delta;
    delta.Create(Sym("hot"),
                 {Value::Int(static_cast<int64_t>(rng.Uniform(12))),
                  Value::Int(static_cast<int64_t>(rng.Uniform(10)))});
    if (rng.Uniform(3) == 0) {
      delta.Create(Sym("cold"),
                   {Value::Int(static_cast<int64_t>(rng.Uniform(12)))});
    }
    auto change_or = wm.Apply(delta);
    ASSERT_TRUE(change_or.ok());
    matcher.ApplyChanges({std::move(change_or).ValueOrDie()});
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  // Ground truth after the dust settles: a fresh serial matcher over the
  // final WM state must agree with the incrementally-maintained set.
  auto serial = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(serial->Initialize(rules, wm).ok());
  EXPECT_EQ(serial->conflict_set().CanonicalDump(),
            matcher.conflict_set().CanonicalDump());
}

// ---------------------------------------------------------------------
// Skew adaptation: hot-partition value-hash splitting.

// A hot self-join workload: every batch lands on `hot`, whose only rules
// eq-join on field `k` — split-eligible, so with streak 1 the home
// partition splits after the first batch. Every subsequent batch must
// still dump byte-identically to the serial matcher, including removals,
// modifies, and the negated-CE blocker rule.
constexpr const char* kHotJoinProgram = R"(
(relation hot (k int) (v int))
(relation mark (k int))

(rule pairup
  (hot ^k <x> ^v <a>)
  (hot ^k <x> ^v { > 3 })
  -->
  (remove 1))

(rule unmarked
  (hot ^k <x> ^v { > 8 })
  -(mark ^k <x>)
  -->
  (remove 1))
)";

std::vector<WmChange> RandomHotBatch(WorkingMemory* wm, Random* rng) {
  Delta delta;
  const size_t ops = 1 + rng->Uniform(4);
  std::vector<WmeId> touched;
  for (size_t op = 0; op < ops; ++op) {
    switch (rng->Uniform(4)) {
      case 0:
      case 1:
        delta.Create(Sym("hot"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(10))),
                      Value::Int(static_cast<int64_t>(rng->Uniform(12)))});
        break;
      case 2:
        delta.Create(Sym("mark"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(10)))});
        break;
      case 3: {
        auto rows = wm->Scan(Sym("hot"));
        if (rows.empty()) break;
        const WmePtr& row = rows[rng->Uniform(rows.size())];
        if (std::find(touched.begin(), touched.end(), row->id()) !=
            touched.end()) {
          break;
        }
        touched.push_back(row->id());
        delta.Delete(row->id());
        break;
      }
    }
  }
  if (delta.empty()) {
    delta.Create(Sym("hot"), {Value::Int(0), Value::Int(0)});
  }
  auto change_or = wm->Apply(delta);
  DBPS_CHECK(change_or.ok()) << change_or.status();
  return {std::move(change_or).ValueOrDie()};
}

TEST(PartitionedSplitTest, SplitEquivalenceByteForByte) {
  for (MatcherKind kind : {MatcherKind::kRete, MatcherKind::kTreat}) {
    WorkingMemory wm;
    auto rules = LoadProgram(kHotJoinProgram, &wm).ValueOrDie();
    for (int i = 0; i < 12; ++i) {
      ASSERT_TRUE(
          wm.Insert("hot", {Value::Int(i % 6), Value::Int(i)}).ok());
    }
    auto serial = CreateMatcher(kind);
    ASSERT_TRUE(serial->Initialize(rules, wm).ok());

    PartitionedMatcher::Options options;
    options.num_partitions = 4;
    options.num_workers = 2;
    options.inner = kind;
    options.split_hot = true;
    options.split_ways = 3;
    options.split_streak = 1;
    options.split_share = 0.5;
    PartitionedMatcher matcher(options);
    ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
    EXPECT_EQ(serial->conflict_set().CanonicalDump(),
              matcher.conflict_set().CanonicalDump());

    Random rng(4242 + static_cast<uint64_t>(kind));
    for (int batch = 0; batch < 60; ++batch) {
      const std::vector<WmChange> changes = RandomHotBatch(&wm, &rng);
      serial->ApplyChanges(changes);
      matcher.ApplyChanges(changes);
      ASSERT_EQ(serial->conflict_set().CanonicalDump(),
                matcher.conflict_set().CanonicalDump())
          << "diverged at batch " << batch << " ("
          << MatcherKindToString(kind) << ")";
    }

    const PartitionedMatcher::Stats stats = matcher.GetStats();
    EXPECT_EQ(stats.splits, 1u) << MatcherKindToString(kind);
    const size_t home = matcher.PartitionOfRelation(Sym("hot"));
    EXPECT_EQ(matcher.num_subpartitions(home), 3u);
    EXPECT_EQ(stats.partitions[home].subs, 3u);
  }
}

// A rule whose later CE joins a MIDDLE CE (not the first) is not
// split-eligible — routing by the first CE's attribute would separate
// the chained pair into different sub-partitions. The partition must
// stay hot-but-unsplit forever.
TEST(PartitionedSplitTest, TransitiveJoinChainNeverSplits) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation hot (k int) (j int))
(rule chain
  (hot ^k <x> ^j <y>)
  (hot ^k <x> ^j <z>)
  (hot ^k <w> ^j <z>)
  -->
  (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  auto serial = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(serial->Initialize(rules, wm).ok());

  PartitionedMatcher::Options options;
  options.num_partitions = 4;
  options.num_workers = 2;
  options.split_hot = true;
  options.split_streak = 1;
  options.split_share = 0.5;
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());

  Random rng(77);
  for (int batch = 0; batch < 20; ++batch) {
    Delta delta;
    delta.Create(Sym("hot"),
                 {Value::Int(static_cast<int64_t>(rng.Uniform(4))),
                  Value::Int(static_cast<int64_t>(rng.Uniform(4)))});
    auto change_or = wm.Apply(delta);
    ASSERT_TRUE(change_or.ok());
    std::vector<WmChange> changes{std::move(change_or).ValueOrDie()};
    serial->ApplyChanges(changes);
    matcher.ApplyChanges(changes);
    ASSERT_EQ(serial->conflict_set().CanonicalDump(),
              matcher.conflict_set().CanonicalDump());
  }
  EXPECT_EQ(matcher.GetStats().splits, 0u);
  EXPECT_EQ(matcher.num_subpartitions(matcher.PartitionOfRelation(Sym("hot"))),
            1u);
}

// ---------------------------------------------------------------------
// Skew adaptation: dynamic rule re-homing.

TEST(PartitionedRehomeTest, RehomeEquivalenceByteForByte) {
  WorkingMemory wm;
  auto rules = LoadProgram(kHotJoinProgram, &wm).ValueOrDie();
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(wm.Insert("hot", {Value::Int(i % 4), Value::Int(i)}).ok());
  }
  auto serial = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(serial->Initialize(rules, wm).ok());

  PartitionedMatcher::Options options;
  options.num_partitions = 4;
  options.num_workers = 2;
  options.rehome = true;
  options.rehome_streak = 3;  // single-relation skew saturates bin 9 fast
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());

  Random rng(31337);
  for (int batch = 0; batch < 40; ++batch) {
    const std::vector<WmChange> changes = RandomHotBatch(&wm, &rng);
    serial->ApplyChanges(changes);
    matcher.ApplyChanges(changes);
    ASSERT_EQ(serial->conflict_set().CanonicalDump(),
              matcher.conflict_set().CanonicalDump())
        << "diverged at batch " << batch;
  }
  const PartitionedMatcher::Stats stats = matcher.GetStats();
  // The trigger fired: either the map actually moved, or rebuilding
  // reproduced the same assignment and was skipped (anti-thrash).
  EXPECT_GE(stats.rehomes + stats.rehome_skips, 1u);
}

// Split + re-home armed together under a multi-relation workload: the
// adaptation machinery may fire in any order (re-home resets split
// state); equivalence must hold throughout.
TEST(PartitionedRehomeTest, SplitAndRehomeTogether) {
  WorkingMemory wm;
  auto rules = LoadProgram(kWorkloadProgram, &wm).ValueOrDie();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(wm.Insert("order", {Value::Int(i), Value::Int(i % 3)}).ok());
    ASSERT_TRUE(
        wm.Insert("stock", {Value::Int(i), Value::Int((i + 1) % 4)}).ok());
  }
  auto serial = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(serial->Initialize(rules, wm).ok());

  PartitionedMatcher::Options options;
  options.num_partitions = 4;
  options.num_workers = 4;
  options.split_hot = true;
  options.split_ways = 2;
  options.split_streak = 2;
  options.split_share = 0.5;
  options.rehome = true;
  options.rehome_streak = 4;
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());

  Random rng(2718);
  for (int batch = 0; batch < 80; ++batch) {
    const std::vector<WmChange> changes = RandomBatch(&wm, &rng);
    serial->ApplyChanges(changes);
    matcher.ApplyChanges(changes);
    ASSERT_EQ(serial->conflict_set().CanonicalDump(),
              matcher.conflict_set().CanonicalDump())
        << "diverged at batch " << batch;
  }
}

// TSan stress for the tentpole's new surface: engine-shaped readers
// hammer the shared conflict set while batches propagate AND the matcher
// splits its hot partition and re-homes rules mid-run. Aggressive streak
// knobs force both rebuilds to actually happen while readers are live.
// Run under -fsanitize=thread to verify; assertions hold regardless.
TEST(PartitionedMatcherStressTest, ConcurrentReadersDuringSplitAndRehome) {
  WorkingMemory wm;
  auto rules = LoadProgram(kHotJoinProgram, &wm).ValueOrDie();
  PartitionedMatcher::Options options;
  options.num_partitions = 4;
  options.num_workers = 4;
  options.split_hot = true;
  options.split_ways = 3;
  options.split_streak = 1;
  options.split_share = 0.5;
  options.rehome = true;
  options.rehome_streak = 5;
  PartitionedMatcher matcher(options);
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&, r] {
      Random rng(900 + r);
      ConflictSet& cs = matcher.conflict_set();
      while (!stop.load(std::memory_order_acquire)) {
        InstPtr claimed = cs.Claim(ConflictResolution::kPriority, &rng);
        if (claimed != nullptr) {
          cs.Contains(claimed->key());
          cs.Unclaim(claimed->key());
        }
        (void)cs.Snapshot();
        (void)cs.size();
      }
    });
  }

  Random rng(53);
  for (int batch = 0; batch < 80; ++batch) {
    matcher.ApplyChanges(RandomHotBatch(&wm, &rng));
  }
  stop.store(true, std::memory_order_release);
  for (auto& t : readers) t.join();

  const PartitionedMatcher::Stats stats = matcher.GetStats();
  EXPECT_GE(stats.splits, 1u);
  EXPECT_GE(stats.rehomes + stats.rehome_skips, 1u);

  auto serial = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(serial->Initialize(rules, wm).ok());
  EXPECT_EQ(serial->conflict_set().CanonicalDump(),
            matcher.conflict_set().CanonicalDump());
}

}  // namespace
}  // namespace dbps
