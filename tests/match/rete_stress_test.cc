// Deeper Rete shapes: long beta chains, leading negations, stacked
// negations, churn, and cross-checks against the naive oracle on every
// shape.

#include <gtest/gtest.h>

#include <set>

#include "lang/compiler.h"
#include "match/matcher.h"
#include "match/rete.h"
#include "util/random.h"

namespace dbps {
namespace {

std::set<std::string> Keys(const Matcher& matcher) {
  std::set<std::string> keys;
  for (const auto& inst : matcher.conflict_set().Snapshot()) {
    keys.insert(inst->key().ToString());
  }
  return keys;
}

void ExpectAgreement(const RuleSetPtr& rules, const WorkingMemory& wm,
                     size_t expected) {
  auto rete = CreateMatcher(MatcherKind::kRete);
  auto naive = CreateMatcher(MatcherKind::kNaive);
  ASSERT_TRUE(rete->Initialize(rules, wm).ok());
  ASSERT_TRUE(naive->Initialize(rules, wm).ok());
  EXPECT_EQ(Keys(*rete), Keys(*naive));
  EXPECT_EQ(rete->conflict_set().size(), expected);
}

TEST(ReteStress, TenWayChainJoins) {
  WorkingMemory wm;
  std::string source = "(relation link (pos int) (v int))\n(rule chain\n";
  for (int i = 1; i <= 10; ++i) {
    source += "  (link ^pos " + std::to_string(i) + " ^v <v" +
              std::to_string(i) + ">" +
              (i > 1 ? " ^v { >= <v" + std::to_string(i - 1) + "> })"
                     : ")") +
              "\n";
  }
  source += "  --> (remove 1))\n";
  auto rules_or = CompileProgram(source);
  ASSERT_TRUE(rules_or.ok()) << rules_or.status() << "\n" << source;

  WorkingMemory wm2;
  auto rules = LoadProgram(source, &wm2).ValueOrDie();
  // A strictly increasing chain of 10 links matches exactly once.
  for (int i = 1; i <= 10; ++i) {
    ASSERT_TRUE(wm2.Insert("link", {Value::Int(i), Value::Int(i)}).ok());
  }
  ExpectAgreement(rules, wm2, 1u);

  // Breaking the monotonicity at position 5 kills the match.
  WmeId id = 0;
  for (const auto& wme : wm2.Scan(Sym("link"))) {
    if (wme->value(0) == Value::Int(5)) id = wme->id();
  }
  Delta delta;
  delta.Modify(id, {{1, Value::Int(0)}});
  ASSERT_TRUE(wm2.Apply(delta).ok());
  ExpectAgreement(rules, wm2, 0u);
}

TEST(ReteStress, LeadingNegation) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation flag (name symbol))
(relation job (id int))
(rule run-unless-frozen
  -(flag ^name frozen)
  (job ^id <j>)
  -->
  (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  ASSERT_TRUE(wm.Insert("job", {Value::Int(1)}).ok());
  ASSERT_TRUE(wm.Insert("job", {Value::Int(2)}).ok());
  ExpectAgreement(rules, wm, 2u);

  ASSERT_TRUE(wm.Insert("flag", {Value::Symbol("frozen")}).ok());
  ExpectAgreement(rules, wm, 0u);
}

TEST(ReteStress, RemoveActionOnRuleWithLeadingNegation) {
  // (remove 2) in source counts positive CEs only -> removes the job.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation flag (name symbol))
(relation job (id int))
(rule gated -(flag ^name stop) (job ^id <j>) --> (remove 1))
(make job ^id 1)
)",
                           &wm)
                   .ValueOrDie();
  // With one positive CE, (remove 1) must target the job.
  auto matcher = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  ASSERT_EQ(matcher->conflict_set().size(), 1u);
  auto inst = matcher->conflict_set().Snapshot()[0];
  EXPECT_EQ(inst->matched().size(), 1u);
  EXPECT_EQ(inst->matched()[0]->relation(), Sym("job"));
}

TEST(ReteStress, StackedNegations) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation goal (id int))
(relation veto-a (goal int))
(relation veto-b (goal int))
(rule clear
  (goal ^id <g>)
  -(veto-a ^goal <g>)
  -(veto-b ^goal <g>)
  -->
  (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  for (int g = 1; g <= 4; ++g) {
    ASSERT_TRUE(wm.Insert("goal", {Value::Int(g)}).ok());
  }
  ASSERT_TRUE(wm.Insert("veto-a", {Value::Int(1)}).ok());
  ASSERT_TRUE(wm.Insert("veto-b", {Value::Int(2)}).ok());
  ASSERT_TRUE(wm.Insert("veto-a", {Value::Int(3)}).ok());
  ASSERT_TRUE(wm.Insert("veto-b", {Value::Int(3)}).ok());
  // Only goal 4 is clear of both vetoes.
  ExpectAgreement(rules, wm, 1u);

  // Removing veto-a(3) still leaves veto-b(3).
  for (const auto& wme : wm.Scan(Sym("veto-a"))) {
    if (wme->value(0) == Value::Int(3)) {
      ASSERT_TRUE(wm.Delete(wme->id()).ok());
    }
  }
  ExpectAgreement(rules, wm, 1u);
  // Removing veto-b(3) clears goal 3.
  for (const auto& wme : wm.Scan(Sym("veto-b"))) {
    if (wme->value(0) == Value::Int(3)) {
      ASSERT_TRUE(wm.Delete(wme->id()).ok());
    }
  }
  ExpectAgreement(rules, wm, 2u);
}

TEST(ReteStress, NegationBetweenJoins) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation a (k int))
(relation block (k int))
(relation b (k int))
(rule sandwich
  (a ^k <k>)
  -(block ^k <k>)
  (b ^k <k>)
  -->
  (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  for (int k = 1; k <= 3; ++k) {
    ASSERT_TRUE(wm.Insert("a", {Value::Int(k)}).ok());
    ASSERT_TRUE(wm.Insert("b", {Value::Int(k)}).ok());
  }
  ASSERT_TRUE(wm.Insert("block", {Value::Int(2)}).ok());
  ExpectAgreement(rules, wm, 2u);
}

TEST(ReteStress, HighChurnStaysConsistent) {
  // Insert/delete/modify churn over a joining + negating rule set,
  // cross-checked against the oracle every step.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation a (k int) (v int))
(relation b (k int) (v int))
(relation mute (k int))
(rule pairs (a ^k <k> ^v <va>) (b ^k <k> ^v { >= <va> })
  -(mute ^k <k>) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  auto rete = CreateMatcher(MatcherKind::kRete);
  auto naive = CreateMatcher(MatcherKind::kNaive);
  ASSERT_TRUE(rete->Initialize(rules, wm).ok());
  ASSERT_TRUE(naive->Initialize(rules, wm).ok());

  Random rng(321);
  for (int step = 0; step < 300; ++step) {
    Delta delta;
    int kind = static_cast<int>(rng.Uniform(5));
    if (kind <= 1) {
      const char* relation = kind == 0 ? "a" : "b";
      delta.Create(Sym(relation),
                   {Value::Int(static_cast<int64_t>(rng.Uniform(5))),
                    Value::Int(static_cast<int64_t>(rng.Uniform(10)))});
    } else if (kind == 2) {
      delta.Create(Sym("mute"),
                   {Value::Int(static_cast<int64_t>(rng.Uniform(5)))});
    } else {
      std::vector<WmePtr> all;
      for (const char* relation : {"a", "b", "mute"}) {
        for (const auto& wme : wm.Scan(Sym(relation))) {
          all.push_back(wme);
        }
      }
      if (all.empty()) continue;
      const WmePtr& victim = all[rng.Uniform(all.size())];
      if (kind == 3 || victim->arity() < 2) {
        delta.Delete(victim->id());
      } else {
        delta.Modify(victim->id(),
                     {{1, Value::Int(static_cast<int64_t>(
                              rng.Uniform(10)))}});
      }
    }
    auto change = wm.Apply(delta);
    ASSERT_TRUE(change.ok());
    rete->ApplyChange(change.ValueOrDie());
    naive->ApplyChange(change.ValueOrDie());
    ASSERT_EQ(Keys(*rete), Keys(*naive)) << "step " << step;
  }
}

TEST(ReteStress, ManyRulesShareStructure) {
  // 40 rules over the same relations; alpha memories must be shared
  // (distinct thresholds → distinct memories, repeated thresholds →
  // shared).
  std::string source = "(relation m (v int))\n";
  for (int r = 0; r < 40; ++r) {
    source += "(rule r" + std::to_string(r) + " (m ^v { > " +
              std::to_string(r % 10) + " }) --> (remove 1))\n";
  }
  WorkingMemory wm;
  auto rules = LoadProgram(source, &wm).ValueOrDie();
  ReteMatcher matcher;
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  auto stats = matcher.GetStats();
  EXPECT_EQ(stats.production_nodes, 40u);
  EXPECT_EQ(stats.alpha_memories, 10u);  // one per distinct threshold

  Delta delta;
  delta.Create(Sym("m"), {Value::Int(5)});
  auto change = wm.Apply(delta);
  ASSERT_TRUE(change.ok());
  matcher.ApplyChange(change.ValueOrDie());
  // v=5 satisfies thresholds 0..4 -> 5 thresholds x 4 rules each = 20.
  EXPECT_EQ(matcher.conflict_set().size(), 20u);
}

}  // namespace
}  // namespace dbps
