// Property test: on random programs and random WM mutation sequences, the
// Rete network's conflict set must equal the naive rematcher's exactly.

#include <gtest/gtest.h>

#include <set>
#include <string>

#include "lang/compiler.h"
#include "match/matcher.h"
#include "testing/workloads.h"
#include "util/random.h"

namespace dbps {
namespace {

std::set<std::string> Keys(const Matcher& matcher) {
  std::set<std::string> keys;
  for (const auto& inst : matcher.conflict_set().Snapshot()) {
    keys.insert(inst->key().ToString());
  }
  return keys;
}

class ReteVsNaive : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ReteVsNaive, ConflictSetsAgreeUnderRandomMutations) {
  const uint64_t seed = GetParam();
  testing::RandomProgramBuilder builder(seed);
  std::string source = builder.Build();

  WorkingMemory wm;
  auto rules_or = LoadProgram(source, &wm);
  ASSERT_TRUE(rules_or.ok()) << rules_or.status() << "\nprogram:\n"
                             << source;
  RuleSetPtr rules = rules_or.ValueOrDie();

  auto rete = CreateMatcher(MatcherKind::kRete);
  auto naive = CreateMatcher(MatcherKind::kNaive);
  auto treat = CreateMatcher(MatcherKind::kTreat);
  ASSERT_TRUE(rete->Initialize(rules, wm).ok());
  ASSERT_TRUE(naive->Initialize(rules, wm).ok());
  ASSERT_TRUE(treat->Initialize(rules, wm).ok());
  ASSERT_EQ(Keys(*rete), Keys(*naive)) << "divergence at init\n" << source;
  ASSERT_EQ(Keys(*treat), Keys(*naive))
      << "treat divergence at init\n" << source;

  // Random mutation stream: inserts, deletes, modifies across relations.
  Random rng(seed ^ 0xabcdef);
  for (int step = 0; step < 60; ++step) {
    Delta delta;
    const int kind = static_cast<int>(rng.Uniform(4));
    if (kind == 0) {
      static const char* kKinds[] = {"red", "green", "blue"};
      delta.Create(Sym("token"),
                   {Value::Symbol(kKinds[rng.Uniform(3)]),
                    Value::Int(static_cast<int64_t>(rng.Uniform(6))),
                    Value::Int(0)});
    } else if (kind == 1) {
      delta.Create(Sym("mark"),
                   {Value::Int(static_cast<int64_t>(rng.Uniform(6)))});
    } else {
      // Delete or modify a random live WME.
      std::vector<WmePtr> all;
      for (const char* rel : {"token", "slot", "mark"}) {
        for (const auto& wme : wm.Scan(Sym(rel))) all.push_back(wme);
      }
      if (all.empty()) continue;
      const WmePtr& victim = all[rng.Uniform(all.size())];
      if (kind == 2) {
        delta.Delete(victim->id());
      } else {
        // Modify the last (int) field.
        size_t field = victim->arity() - 1;
        delta.Modify(victim->id(),
                     {{field, Value::Int(static_cast<int64_t>(
                                  rng.Uniform(6)))}});
      }
    }
    auto change = wm.Apply(delta);
    ASSERT_TRUE(change.ok()) << change.status();
    rete->ApplyChange(change.ValueOrDie());
    naive->ApplyChange(change.ValueOrDie());
    treat->ApplyChange(change.ValueOrDie());
    ASSERT_EQ(Keys(*rete), Keys(*naive))
        << "divergence at step " << step << " (seed " << seed
        << ") after " << delta.ToString() << "\nprogram:\n"
        << source;
    ASSERT_EQ(Keys(*treat), Keys(*naive))
        << "treat divergence at step " << step << " (seed " << seed
        << ") after " << delta.ToString() << "\nprogram:\n"
        << source;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReteVsNaive,
                         ::testing::Range<uint64_t>(1, 21));

TEST(ReteVsNaive, LogisticsWorkloadAgrees) {
  RuleSetPtr rules;
  auto wm = testing::MakeLogisticsWm(8, 4, 5, &rules);
  auto rete = CreateMatcher(MatcherKind::kRete);
  auto naive = CreateMatcher(MatcherKind::kNaive);
  ASSERT_TRUE(rete->Initialize(rules, *wm).ok());
  ASSERT_TRUE(naive->Initialize(rules, *wm).ok());
  EXPECT_EQ(Keys(*rete), Keys(*naive));
  EXPECT_GT(rete->conflict_set().size(), 0u);
}

}  // namespace
}  // namespace dbps
