// Coverage for smaller surfaces: lock wait-timeouts, execution-graph DOT
// output, TREAT internals, instantiation printing, engine lock-timeout
// handling.

#include <gtest/gtest.h>

#include <future>

#include "engine/parallel_engine.h"
#include "lang/compiler.h"
#include "lock/lock_manager.h"
#include "match/treat.h"
#include "semantics/replay_validator.h"
#include "sim/paper_scenarios.h"

namespace dbps {
namespace {

TEST(LockTimeout, ExpiringWaitReturnsLockTimeout) {
  LockManager::Options options;
  options.protocol = LockProtocol::kTwoPhase;
  options.wait_timeout = std::chrono::milliseconds(30);
  LockManager lm(options);
  LockObjectId object{Sym("lt"), 1};
  TxnId holder = lm.Begin();
  ASSERT_TRUE(lm.Acquire(holder, object, LockMode::kWa).ok());
  TxnId waiter = lm.Begin();
  Status st = lm.Acquire(waiter, object, LockMode::kWa);
  EXPECT_TRUE(st.IsLockTimeout()) << st;
  EXPECT_GE(lm.GetStats().timeouts, 1u);
  lm.Release(holder);
  // After the holder releases, the same request succeeds.
  EXPECT_TRUE(lm.Acquire(waiter, object, LockMode::kWa).ok());
}

TEST(LockTimeout, EngineSurvivesLockTimeouts) {
  // A tiny lock timeout degrades to abort-and-retry; the run must still
  // complete and stay consistent.
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation hot (v int))
(rule bump :cost 2000 (hot ^v { < 6 } ^v <v>) --> (modify 1 ^v (+ <v> 1)))
(make hot ^v 0)
)",
                           &wm)
                   .ValueOrDie();
  auto pristine = wm.Clone();
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = LockProtocol::kTwoPhase;  // upgrades block
  options.lock_timeout = std::chrono::milliseconds(1);
  ParallelEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();
  EXPECT_EQ(result.stats.firings, 6u);
  EXPECT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
}

TEST(ExecutionGraphDot, RendersStatesAndEdges) {
  AbstractSystem system = Section33System();
  auto dot = system.ToDot();
  ASSERT_TRUE(dot.ok()) << dot.status();
  EXPECT_NE(dot->find("digraph execution_graph"), std::string::npos);
  EXPECT_NE(dot->find("{p1,p2,p3,p5}"), std::string::npos);  // initial
  EXPECT_NE(dot->find("doublecircle"), std::string::npos);   // terminal
  EXPECT_NE(dot->find("label=\"p1\""), std::string::npos);
}

TEST(Treat, AlphaItemCountTracksState) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule a (t ^v { > 0 }) --> (remove 1))
(rule b (t ^v { > 5 }) --> (remove 1))
)",
                           &wm)
                   .ValueOrDie();
  TreatMatcher matcher;
  ASSERT_TRUE(matcher.Initialize(rules, wm).ok());
  EXPECT_EQ(matcher.AlphaItemCount(), 0u);

  Delta delta;
  delta.Create(Sym("t"), {Value::Int(10)});  // enters both alpha memories
  delta.Create(Sym("t"), {Value::Int(3)});   // enters only rule a's
  auto change = wm.Apply(delta);
  ASSERT_TRUE(change.ok());
  matcher.ApplyChange(change.ValueOrDie());
  EXPECT_EQ(matcher.AlphaItemCount(), 3u);
  EXPECT_EQ(matcher.conflict_set().size(), 3u);

  Delta remove;
  for (const auto& wme : wm.Scan(Sym("t"))) remove.Delete(wme->id());
  change = wm.Apply(remove);
  ASSERT_TRUE(change.ok());
  matcher.ApplyChange(change.ValueOrDie());
  EXPECT_EQ(matcher.AlphaItemCount(), 0u);
  EXPECT_EQ(matcher.conflict_set().size(), 0u);
}

TEST(Instantiation, ToStringShowsRuleAndWmes) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation t (v int))
(rule show (t ^v <v>) --> (remove 1))
(make t ^v 7)
)",
                           &wm)
                   .ValueOrDie();
  auto matcher = CreateMatcher(MatcherKind::kRete);
  ASSERT_TRUE(matcher->Initialize(rules, wm).ok());
  auto inst = matcher->conflict_set().Snapshot()[0];
  std::string text = inst->ToString();
  EXPECT_NE(text.find("show"), std::string::npos);
  EXPECT_NE(text.find("7"), std::string::npos);
  EXPECT_NE(inst->key().ToString().find("show["), std::string::npos);
}

TEST(MatcherKind, Names) {
  EXPECT_STREQ(MatcherKindToString(MatcherKind::kRete), "rete");
  EXPECT_STREQ(MatcherKindToString(MatcherKind::kNaive), "naive");
  EXPECT_STREQ(MatcherKindToString(MatcherKind::kTreat), "treat");
}

TEST(LockProtocolNames, Names) {
  EXPECT_STREQ(LockProtocolToString(LockProtocol::kTwoPhase), "2PL");
  EXPECT_STREQ(LockProtocolToString(LockProtocol::kRcRaWa), "Rc/Ra/Wa");
  EXPECT_STREQ(AbortPolicyToString(AbortPolicy::kAbort), "abort");
  EXPECT_STREQ(AbortPolicyToString(AbortPolicy::kRevalidate),
               "revalidate");
}

}  // namespace
}  // namespace dbps
