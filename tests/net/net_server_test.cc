// NetServer end-to-end over loopback: the wire protocol against a live
// engine — session lifecycle, pipelining, backpressure frames, protocol
// violations, rule activation from network writes, and stats.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dbps.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/wire.h"

namespace dbps {
namespace net {
namespace {

using std::chrono::milliseconds;

constexpr const char* kPlainProgram = R"(
(relation item (id int))
(relation out (id int))
)";

constexpr const char* kServeProgram = R"(
(relation inbox (id int))
(relation done (id int))
(rule serve
  (inbox ^id <i>)
  -->
  (remove 1)
  (make done ^id <i>))
)";

/// Engine + manager + socket front-end, torn down in the documented
/// order: NetServer, then manager, then engine join.
class NetTestServer {
 public:
  explicit NetTestServer(const char* program,
                         ServerOptions server_options = {},
                         NetServerOptions net_options = {}) {
    rules_ = LoadProgram(program, &wm_).ValueOrDie();
    manager_ =
        std::make_unique<SessionManager>(&wm_, std::move(server_options));
    ParallelEngineOptions engine_options;
    engine_options.num_workers = 2;
    engine_options.external_source = manager_.get();
    engine_ = std::make_unique<ParallelEngine>(&wm_, rules_, engine_options);
    manager_->BindEngine(engine_.get());
    thread_ = std::thread([this] { result_ = engine_->Run(); });
    net_ = std::make_unique<NetServer>(manager_.get(), net_options);
    DBPS_CHECK_OK(net_->Start());
  }

  ~NetTestServer() { Shutdown(); }

  void Shutdown() {
    if (net_) net_->Stop();
    manager_->Close();
    if (thread_.joinable()) thread_.join();
  }

  std::unique_ptr<DbpsClient> Client(const std::string& name) {
    auto client_or =
        DbpsClient::Connect("127.0.0.1", net_->port(), name);
    DBPS_CHECK_OK(client_or.status());
    return std::move(client_or).ValueOrDie();
  }

  NetServer& net() { return *net_; }
  SessionManager& manager() { return *manager_; }
  WorkingMemory& wm() { return wm_; }

 private:
  WorkingMemory wm_;
  RuleSetPtr rules_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ParallelEngine> engine_;
  std::unique_ptr<NetServer> net_;
  std::thread thread_;
  StatusOr<RunResult> result_{Status::Internal("engine not run")};
};

TEST(NetServerTest, HelloTransactRoundTrip) {
  NetTestServer server(kPlainProgram);
  auto client = server.Client("alice");
  EXPECT_GT(client->session_id(), 0u);
  EXPECT_TRUE(client->Ping().ok());

  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(client->WriteLine("(delta (make item 7))").ok());
  auto seq = client->Commit();
  ASSERT_TRUE(seq.ok()) << seq.status();

  ASSERT_TRUE(client->Begin().ok());
  auto rows = client->Read("item");
  ASSERT_TRUE(rows.ok()) << rows.status();
  ASSERT_EQ(rows.ValueOrDie().size(), 1u);
  EXPECT_NE(rows.ValueOrDie()[0].find("item"), std::string::npos);
  EXPECT_TRUE(client->Abort().ok());
  EXPECT_TRUE(client->Goodbye().ok());
}

TEST(NetServerTest, PipelinedTransactionAnswersInOrder) {
  NetTestServer server(kPlainProgram);
  auto client = server.Client("pipeline");
  // A whole transaction leaves in one burst before any response is read.
  uint64_t b = client->Send(FrameType::kBegin).ValueOrDie();
  std::string wbody;
  PutString(&wbody, "(delta (make item 1))");
  uint64_t w = client->Send(FrameType::kWrite, wbody).ValueOrDie();
  uint64_t c = client->Send(FrameType::kCommit).ValueOrDie();
  EXPECT_EQ(client->in_flight(), 3u);

  EXPECT_TRUE(DbpsClient::ExpectOk(client->Await(b).ValueOrDie()).ok());
  EXPECT_TRUE(DbpsClient::ExpectOk(client->Await(w).ValueOrDie()).ok());
  auto seq = DbpsClient::ExpectCommitOk(client->Await(c).ValueOrDie());
  ASSERT_TRUE(seq.ok()) << seq.status();
  EXPECT_EQ(client->in_flight(), 0u);
}

TEST(NetServerTest, AwaitOutOfOrderBuffersEarlierResponses) {
  NetTestServer server(kPlainProgram);
  auto client = server.Client("ooo");
  uint64_t p1 = client->Send(FrameType::kPing).ValueOrDie();
  uint64_t p2 = client->Send(FrameType::kPing).ValueOrDie();
  // Await the LATER id first; the earlier response must be buffered.
  EXPECT_EQ(client->Await(p2).ValueOrDie().type, FrameType::kPong);
  EXPECT_EQ(client->Await(p1).ValueOrDie().type, FrameType::kPong);
}

TEST(NetServerTest, SessionTableFullYieldsBusy) {
  ServerOptions options;
  options.max_sessions = 1;
  NetTestServer server(kPlainProgram, options);
  auto first = server.Client("only");
  auto second =
      DbpsClient::Connect("127.0.0.1", server.net().port(), "crowd");
  ASSERT_FALSE(second.ok());
  EXPECT_TRUE(second.status().IsResourceExhausted()) << second.status();
  EXPECT_NE(second.status().message().find("retry"), std::string::npos);
  EXPECT_GE(server.net().GetStats().busy_frames, 1u);
}

TEST(NetServerTest, TxnGatePressureYieldsBusyOnBegin) {
  ServerOptions options;
  options.max_concurrent_txns = 1;
  NetServerOptions net_options;
  net_options.txn_gate_timeout = milliseconds(5);
  NetTestServer server(kPlainProgram, options, net_options);
  auto holder = server.Client("holder");
  ASSERT_TRUE(holder->Begin().ok());  // occupies the only gate slot
  auto blocked = server.Client("blocked");
  Status st = blocked->Begin();
  EXPECT_TRUE(st.IsResourceExhausted()) << st;
  // Release the slot; the blocked client's retry succeeds.
  ASSERT_TRUE(holder->Commit().ok());
  EXPECT_TRUE(blocked->Begin().ok());
  EXPECT_TRUE(blocked->Commit().ok());
}

TEST(NetServerTest, RequestsBeforeHelloAreRejected) {
  NetTestServer server(kPlainProgram);
  // Raw connection, no Hello: Begin must come back as an Error frame
  // (not a closed connection, not a crash).
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.net().port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = EncodeFrame(FrameType::kBegin, 5);
  ASSERT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  char buf[256];
  FrameReader reader;
  Frame frame;
  bool got = false;
  for (int i = 0; i < 100 && !got; ++i) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
    got = reader.Next(&frame).ValueOrDie();
  }
  ASSERT_TRUE(got);
  EXPECT_EQ(frame.type, FrameType::kError);
  EXPECT_EQ(frame.request_id, 5u);
  EXPECT_TRUE(DecodeError(frame).IsInvalidArgument());
  ::close(fd);
}

TEST(NetServerTest, GarbageBytesKillTheConnection) {
  NetTestServer server(kPlainProgram);
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(server.net().port());
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string garbage(64, '\xff');  // insane length prefix
  ASSERT_EQ(::send(fd, garbage.data(), garbage.size(), 0),
            static_cast<ssize_t>(garbage.size()));
  char buf[64];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);  // server hangs up
  ::close(fd);
  for (int i = 0; i < 200 && server.net().GetStats().protocol_errors == 0;
       ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  EXPECT_GE(server.net().GetStats().protocol_errors, 1u);
}

TEST(NetServerTest, NetworkWriteActivatesRules) {
  NetTestServer server(kServeProgram);
  auto client = server.Client("producer");
  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(client->WriteLine("(delta (make inbox 42))").ok());
  ASSERT_TRUE(client->Commit().ok());
  // The serve rule consumes inbox and produces done; poll through the
  // same wire protocol until it lands.
  std::vector<std::string> done;
  for (int i = 0; i < 2000 && done.empty(); ++i) {
    ASSERT_TRUE(client->Begin().ok());
    auto rows = client->Read("done");
    ASSERT_TRUE(rows.ok()) << rows.status();
    done = std::move(rows).ValueOrDie();
    ASSERT_TRUE(client->Commit().ok());
    if (done.empty()) std::this_thread::sleep_for(milliseconds(1));
  }
  ASSERT_EQ(done.size(), 1u);
  EXPECT_NE(done[0].find("42"), std::string::npos);
}

TEST(NetServerTest, QueryOverTheWire) {
  NetTestServer server(kPlainProgram);
  auto client = server.Client("q");
  ASSERT_TRUE(client->Begin().ok());
  ASSERT_TRUE(client->WriteLine("(delta (make item 1))").ok());
  ASSERT_TRUE(client->WriteLine("(delta (make item 2))").ok());
  ASSERT_TRUE(client->Commit().ok());
  ASSERT_TRUE(client->Begin().ok());
  auto rows = client->Query("(item ^id <i>)");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_EQ(rows.ValueOrDie().size(), 2u);
  EXPECT_TRUE(client->Commit().ok());
}

TEST(NetServerTest, ManyConcurrentConnectionsStatsAndTeardown) {
  ServerOptions options;
  options.max_sessions = 128;
  NetServerOptions net_options;
  net_options.num_loops = 2;
  net_options.num_dispatchers = 4;
  NetTestServer server(kPlainProgram, options, net_options);
  constexpr int kClients = 24;
  constexpr int kTxns = 5;
  std::vector<std::thread> threads;
  std::atomic<int> commits{0};
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&server, &commits, t] {
      auto client = server.Client("c" + std::to_string(t));
      for (int i = 0; i < kTxns; ++i) {
        ASSERT_TRUE(client->Begin().ok());
        ASSERT_TRUE(client
                        ->WriteLine("(delta (make item " +
                                    std::to_string(t * 1000 + i) + "))")
                        .ok());
        ASSERT_TRUE(client->Commit().ok());
        ++commits;
      }
      EXPECT_TRUE(client->Goodbye().ok());
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(commits.load(), kClients * kTxns);
  for (int i = 0; i < 500 && server.net().open_connections() > 0; ++i) {
    std::this_thread::sleep_for(milliseconds(1));
  }
  NetStats stats = server.net().GetStats();
  EXPECT_EQ(stats.open_connections, 0u);
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_EQ(stats.connections_closed, stats.connections_accepted);
  EXPECT_GE(stats.frames_in,
            static_cast<uint64_t>(kClients * kTxns * 3));
  EXPECT_EQ(stats.frames_in, stats.frames_out);
  EXPECT_EQ(server.wm().Count(Sym("item")),
            static_cast<size_t>(kClients * kTxns));
}

TEST(NetServerTest, StopWithLiveConnectionsClosesCleanly) {
  auto server = std::make_unique<NetTestServer>(kPlainProgram);
  auto client = server->Client("lingering");
  ASSERT_TRUE(client->Begin().ok());
  server->Shutdown();  // server goes away under an open transaction
  // The client's next operation fails instead of hanging.
  Status st = client->Ping();
  EXPECT_FALSE(st.ok());
}

}  // namespace
}  // namespace net
}  // namespace dbps
