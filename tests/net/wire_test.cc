// Binary wire protocol: encode/decode round trips, incremental framing,
// and malformed-stream rejection.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "net/wire.h"

namespace dbps {
namespace net {
namespace {

TEST(WireTest, FrameLayoutIsLengthTypeIdBody) {
  const std::string bytes = EncodeFrame(FrameType::kPing, 0x1122334455667788);
  ASSERT_EQ(bytes.size(), 4u + 1u + 8u);
  // payload_len = 9 (type + request_id), little-endian.
  EXPECT_EQ(static_cast<uint8_t>(bytes[0]), 9);
  EXPECT_EQ(static_cast<uint8_t>(bytes[1]), 0);
  EXPECT_EQ(static_cast<uint8_t>(bytes[4]), static_cast<uint8_t>(FrameType::kPing));
  EXPECT_EQ(static_cast<uint8_t>(bytes[5]), 0x88);  // id little-endian
  EXPECT_EQ(static_cast<uint8_t>(bytes[12]), 0x11);
}

TEST(WireTest, EncodeDecodeRoundTrip) {
  FrameReader reader;
  reader.Feed(EncodeHello(1, "alice"));
  reader.Feed(EncodeWrite(2, "(create item 7)"));
  reader.Feed(EncodeCommitOk(3, 42));
  reader.Feed(EncodeRows(4, 2, "a\nb\n"));

  Frame frame;
  ASSERT_TRUE(reader.Next(&frame).ValueOrDie());
  EXPECT_EQ(frame.type, FrameType::kHello);
  EXPECT_EQ(frame.request_id, 1u);
  BodyReader hello(frame.body);
  EXPECT_EQ(hello.String().ValueOrDie(), "alice");
  EXPECT_TRUE(hello.AtEnd());

  ASSERT_TRUE(reader.Next(&frame).ValueOrDie());
  EXPECT_EQ(frame.type, FrameType::kWrite);
  BodyReader write(frame.body);
  EXPECT_EQ(write.String().ValueOrDie(), "(create item 7)");

  ASSERT_TRUE(reader.Next(&frame).ValueOrDie());
  EXPECT_EQ(frame.type, FrameType::kCommitOk);
  BodyReader commit(frame.body);
  EXPECT_EQ(commit.U64().ValueOrDie(), 42u);

  ASSERT_TRUE(reader.Next(&frame).ValueOrDie());
  EXPECT_EQ(frame.type, FrameType::kRows);
  BodyReader rows(frame.body);
  EXPECT_EQ(rows.U32().ValueOrDie(), 2u);
  EXPECT_EQ(rows.String().ValueOrDie(), "a\nb\n");

  EXPECT_FALSE(reader.Next(&frame).ValueOrDie());  // drained
}

TEST(WireTest, ByteAtATimeFeedingStillParses) {
  const std::string bytes =
      EncodeBusy(9, 5, "gate full") + EncodeFrame(FrameType::kOk, 10);
  FrameReader reader;
  std::vector<Frame> frames;
  for (char c : bytes) {
    reader.Feed(std::string_view(&c, 1));
    Frame frame;
    while (reader.Next(&frame).ValueOrDie()) frames.push_back(frame);
  }
  ASSERT_EQ(frames.size(), 2u);
  EXPECT_EQ(frames[0].type, FrameType::kBusy);
  Status busy = DecodeBusy(frames[0]);
  EXPECT_TRUE(busy.IsResourceExhausted());
  EXPECT_NE(busy.message().find("5ms"), std::string::npos);
  EXPECT_EQ(frames[1].type, FrameType::kOk);
  EXPECT_EQ(frames[1].request_id, 10u);
}

TEST(WireTest, ErrorFrameCarriesStatus) {
  const Status in = Status::LockTimeout("no lock for you");
  FrameReader reader;
  reader.Feed(EncodeError(7, in));
  Frame frame;
  ASSERT_TRUE(reader.Next(&frame).ValueOrDie());
  ASSERT_EQ(frame.type, FrameType::kError);
  Status out = DecodeError(frame);
  EXPECT_EQ(out.code(), in.code());
  EXPECT_EQ(out.message(), in.message());
}

TEST(WireTest, OversizedLengthIsStickyError) {
  std::string bytes;
  PutU32(&bytes, static_cast<uint32_t>(1 + 8 + kMaxFrameBody + 1));
  bytes += EncodeFrame(FrameType::kPing, 1);  // valid frame behind it
  FrameReader reader;
  reader.Feed(bytes);
  Frame frame;
  EXPECT_TRUE(reader.Next(&frame).status().IsInvalidArgument());
  // Sticky: the stream is dead even though valid bytes follow.
  EXPECT_TRUE(reader.Next(&frame).status().IsInvalidArgument());
}

TEST(WireTest, UndersizedLengthIsRejected) {
  std::string bytes;
  PutU32(&bytes, 3);  // < type + request_id
  bytes.append(16, '\0');
  FrameReader reader;
  reader.Feed(bytes);
  Frame frame;
  EXPECT_TRUE(reader.Next(&frame).status().IsInvalidArgument());
}

TEST(WireTest, UnknownTypeByteIsRejected) {
  std::string bytes;
  PutU32(&bytes, 9);
  PutU8(&bytes, 200);  // not a FrameType
  PutU64(&bytes, 1);
  FrameReader reader;
  reader.Feed(bytes);
  Frame frame;
  EXPECT_TRUE(reader.Next(&frame).status().IsInvalidArgument());
}

TEST(WireTest, TruncatedBodyReadsFailCleanly) {
  std::string body;
  PutU32(&body, 100);  // claims a 100-byte string...
  body += "short";     // ...delivers 5
  BodyReader reader(body);
  EXPECT_TRUE(reader.String().status().IsInvalidArgument());
  BodyReader empty("");
  EXPECT_TRUE(empty.U8().status().IsInvalidArgument());
  EXPECT_TRUE(empty.U32().status().IsInvalidArgument());
  EXPECT_TRUE(empty.U64().status().IsInvalidArgument());
}

TEST(WireTest, ReaderCompactionKeepsParsingAcrossManyFrames) {
  FrameReader reader;
  Frame frame;
  for (uint64_t i = 0; i < 5000; ++i) {
    reader.Feed(EncodeWrite(i, std::string(64, 'x')));
    ASSERT_TRUE(reader.Next(&frame).ValueOrDie());
    ASSERT_EQ(frame.request_id, i);
    ASSERT_EQ(reader.buffered(), 0u);
  }
}

}  // namespace
}  // namespace net
}  // namespace dbps
