#include <gtest/gtest.h>

#include "lang/compiler.h"
#include "rules/rhs_evaluator.h"

namespace dbps {
namespace {

// Builds (rule, matched WMEs) pairs from a tiny program so expression
// evaluation can be tested through the real compile path.
struct Fixture {
  WorkingMemory wm;
  RulePtr rule;
  std::vector<WmePtr> matched;

  explicit Fixture(const std::string& rule_body,
                   int64_t a_value = 6, int64_t b_value = 3) {
    std::string source = R"(
(relation pair (a int) (b int))
(relation out  (v any))
)";
    source += rule_body;
    auto rules = LoadProgram(source, &wm).ValueOrDie();
    rule = rules->rules()[0];
    auto wme = wm.Insert("pair", {Value::Int(a_value), Value::Int(b_value)})
                   .ValueOrDie();
    matched = {wme};
  }
};

Value EvalSingleMake(const Fixture& fixture) {
  auto delta = EvaluateRhs(*fixture.rule, fixture.matched);
  EXPECT_TRUE(delta.ok()) << delta.status();
  const auto& ops = delta.ValueOrDie().ops();
  EXPECT_EQ(ops.size(), 1u);
  return std::get<CreateOp>(ops[0]).values[0];
}

TEST(RhsEvaluator, Arithmetic) {
  EXPECT_EQ(EvalSingleMake(Fixture(
                "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (+ <a> <b>)))")),
            Value::Int(9));
  EXPECT_EQ(EvalSingleMake(Fixture(
                "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (- <a> <b>)))")),
            Value::Int(3));
  EXPECT_EQ(EvalSingleMake(Fixture(
                "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (* <a> <b>)))")),
            Value::Int(18));
  EXPECT_EQ(EvalSingleMake(Fixture(
                "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (/ <a> <b>)))")),
            Value::Int(2));
  EXPECT_EQ(EvalSingleMake(Fixture(
                "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (mod <a> 4)))")),
            Value::Int(2));
}

TEST(RhsEvaluator, NestedExpressions) {
  EXPECT_EQ(
      EvalSingleMake(Fixture("(rule r (pair ^a <a> ^b <b>) --> "
                             "(make out ^v (+ (* <a> <a>) (- <b> 1))))")),
      Value::Int(38));  // 36 + 2
}

TEST(RhsEvaluator, MixedIntFloatPromotes) {
  Fixture fixture(
      "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (* <a> 0.5)))");
  EXPECT_EQ(EvalSingleMake(fixture), Value::Float(3.0));
}

TEST(RhsEvaluator, DivisionByZeroFails) {
  Fixture fixture(
      "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (/ <a> <b>)))",
      /*a=*/1, /*b=*/0);
  auto delta = EvaluateRhs(*fixture.rule, fixture.matched);
  EXPECT_FALSE(delta.ok());
  EXPECT_TRUE(delta.status().IsInvalidArgument());
}

TEST(RhsEvaluator, ModByZeroFails) {
  Fixture fixture(
      "(rule r (pair ^a <a> ^b <b>) --> (make out ^v (mod <a> <b>)))",
      /*a=*/1, /*b=*/0);
  EXPECT_FALSE(EvaluateRhs(*fixture.rule, fixture.matched).ok());
}

TEST(RhsEvaluator, ArithmeticOnSymbolFails) {
  WorkingMemory wm;
  auto rules = LoadProgram(R"(
(relation item (name symbol))
(relation out (v any))
(rule r (item ^name <n>) --> (make out ^v (+ <n> 1)))
)",
                           &wm)
                   .ValueOrDie();
  auto wme = wm.Insert("item", {Value::Symbol("x")}).ValueOrDie();
  auto delta = EvaluateRhs(*rules->rules()[0], {wme});
  EXPECT_TRUE(delta.status().IsTypeError());
}

TEST(RhsEvaluator, ModifyTargetsMatchedWme) {
  Fixture fixture(
      "(rule r (pair ^a <a> ^b <b>) --> (modify 1 ^a (+ <a> <b>) ^b 0))");
  auto delta = EvaluateRhs(*fixture.rule, fixture.matched).ValueOrDie();
  ASSERT_EQ(delta.ops().size(), 1u);
  const auto& modify = std::get<ModifyOp>(delta.ops()[0]);
  EXPECT_EQ(modify.id, fixture.matched[0]->id());
  ASSERT_EQ(modify.updates.size(), 2u);
  EXPECT_EQ(modify.updates[0], std::make_pair(size_t{0}, Value::Int(9)));
  EXPECT_EQ(modify.updates[1], std::make_pair(size_t{1}, Value::Int(0)));
}

TEST(RhsEvaluator, RemoveAndHalt) {
  Fixture fixture("(rule r (pair ^a <a> ^b <b>) --> (remove 1) (halt))");
  auto delta = EvaluateRhs(*fixture.rule, fixture.matched).ValueOrDie();
  ASSERT_EQ(delta.ops().size(), 1u);
  EXPECT_EQ(std::get<DeleteOp>(delta.ops()[0]).id,
            fixture.matched[0]->id());
  EXPECT_TRUE(delta.halt());
}

TEST(RhsEvaluator, ActionsKeepOrder) {
  Fixture fixture(R"(
(rule r (pair ^a <a> ^b <b>) -->
  (make out ^v 1)
  (modify 1 ^a 0)
  (make out ^v 2)
  (remove 1)))");
  auto delta = EvaluateRhs(*fixture.rule, fixture.matched).ValueOrDie();
  ASSERT_EQ(delta.ops().size(), 4u);
  EXPECT_TRUE(std::holds_alternative<CreateOp>(delta.ops()[0]));
  EXPECT_TRUE(std::holds_alternative<ModifyOp>(delta.ops()[1]));
  EXPECT_TRUE(std::holds_alternative<CreateOp>(delta.ops()[2]));
  EXPECT_TRUE(std::holds_alternative<DeleteOp>(delta.ops()[3]));
}

TEST(RhsEvaluator, WrongMatchCountIsInternalError) {
  Fixture fixture("(rule r (pair ^a <a> ^b <b>) --> (remove 1))");
  auto delta = EvaluateRhs(*fixture.rule, {});
  EXPECT_TRUE(delta.status().IsInternal());
}

TEST(Rule, ToStringIsInformative) {
  Fixture fixture(
      "(rule pretty :priority 2 (pair ^a <a> ^b { > <a> }) --> (remove 1))");
  std::string text = fixture.rule->ToString();
  EXPECT_NE(text.find("pretty"), std::string::npos);
  EXPECT_NE(text.find(":priority 2"), std::string::npos);
  EXPECT_NE(text.find("remove"), std::string::npos);
}

TEST(RuleSet, AddAndFind) {
  RuleSet rules;
  Condition cond;
  cond.relation = Sym("pair");
  auto rule = std::make_shared<Rule>("only", std::vector<Condition>{cond},
                                     std::vector<Action>{RemoveAction{0}});
  ASSERT_TRUE(rules.Add(rule).ok());
  EXPECT_TRUE(rules.Add(rule).IsAlreadyExists());
  EXPECT_EQ(rules.Find("only"), rule);
  EXPECT_EQ(rules.Find("nope"), nullptr);
}

TEST(Predicates, EvalPredicateSemantics) {
  EXPECT_TRUE(EvalPredicate(TestPredicate::kEq, Value::Int(3),
                            Value::Float(3.0)));
  EXPECT_TRUE(EvalPredicate(TestPredicate::kNe, Value::Symbol("a"),
                            Value::Symbol("b")));
  EXPECT_TRUE(EvalPredicate(TestPredicate::kLt, Value::Int(1),
                            Value::Int(2)));
  EXPECT_FALSE(EvalPredicate(TestPredicate::kLt, Value::Symbol("a"),
                             Value::Int(2)));  // incomparable => false
  EXPECT_TRUE(EvalPredicate(TestPredicate::kGe, Value::Int(2),
                            Value::Int(2)));
  EXPECT_TRUE(EvalPredicate(TestPredicate::kNe, Value::Symbol("a"),
                            Value::Int(1)));  // different kinds are unequal
}

}  // namespace
}  // namespace dbps
