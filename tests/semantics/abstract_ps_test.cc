#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "semantics/abstract_ps.h"
#include "sim/paper_scenarios.h"

namespace dbps {
namespace {

ConflictMask Mask(std::initializer_list<int> productions) {
  ConflictMask mask = 0;
  for (int p : productions) mask |= 1ULL << (p - 1);
  return mask;
}

/// The hand-verified 4-production example:
///   P1: add {P4}, del {P2}; P2: -; P3: del {P4}; P4: -.
///   initial {P1,P2,P3}.
AbstractSystem SmallSystem() {
  return AbstractSystem(
      {
          AbstractProduction{"p1", Mask({4}), Mask({2})},
          AbstractProduction{"p2", 0, 0},
          AbstractProduction{"p3", 0, Mask({4})},
          AbstractProduction{"p4", 0, 0},
      },
      Mask({1, 2, 3}));
}

TEST(AbstractSystem, FireAppliesRefractionDeleteAdd) {
  AbstractSystem system = SmallSystem();
  // Firing P1 from {1,2,3}: -self, -P2, +P4 = {3,4}.
  EXPECT_EQ(system.Fire(Mask({1, 2, 3}), 0), Mask({3, 4}));
  // Firing P3 from {3,4}: -self, -P4 = {}.
  EXPECT_EQ(system.Fire(Mask({3, 4}), 2), 0u);
}

TEST(AbstractSystem, HandEnumeratedSequencesMatch) {
  AbstractSystem system = SmallSystem();
  auto sequences = system.EnumerateCompleteSequences().ValueOrDie();
  std::set<std::string> rendered;
  for (const auto& sequence : sequences) {
    rendered.insert(system.SequenceToString(sequence));
  }
  // Hand enumeration (see Fire semantics above).
  std::set<std::string> expected{
      "p1 p3",       "p1 p4 p3",       "p2 p1 p3", "p2 p1 p4 p3",
      "p2 p3 p1 p4", "p3 p1 p4",       "p3 p2 p1 p4"};
  EXPECT_EQ(rendered, expected);
}

TEST(AbstractSystem, EveryEnumeratedSequenceIsValid) {
  AbstractSystem system = SmallSystem();
  auto sequences = system.EnumerateCompleteSequences().ValueOrDie();
  for (const auto& sequence : sequences) {
    EXPECT_TRUE(system.IsValidSequence(sequence));
    // Every prefix is valid too (Definition 3.1 includes prefixes).
    for (size_t len = 0; len < sequence.size(); ++len) {
      std::vector<size_t> prefix(sequence.begin(),
                                 sequence.begin() + len);
      EXPECT_TRUE(system.IsValidSequence(prefix));
    }
  }
}

TEST(AbstractSystem, InvalidSequencesRejected) {
  AbstractSystem system = SmallSystem();
  EXPECT_FALSE(system.IsValidSequence({3}));       // P4 not initially active
  EXPECT_FALSE(system.IsValidSequence({0, 1}));    // P2 deleted by P1
  EXPECT_FALSE(system.IsValidSequence({0, 0}));    // refraction
  EXPECT_FALSE(system.IsValidSequence({2, 3}));    // P3 deletes P4
  EXPECT_FALSE(system.IsValidSequence({9}));       // unknown production
  EXPECT_TRUE(system.IsValidSequence({}));         // empty prefix
}

TEST(AbstractSystem, ReachableStatesBounded) {
  AbstractSystem system = SmallSystem();
  auto states = system.ReachableStates().ValueOrDie();
  // Initial {1,2,3} plus everything reachable; all distinct.
  std::set<ConflictMask> unique(states.begin(), states.end());
  EXPECT_EQ(unique.size(), states.size());
  EXPECT_TRUE(unique.count(Mask({1, 2, 3})) > 0);
  EXPECT_TRUE(unique.count(0) > 0);  // quiescent state reachable
}

TEST(AbstractSystem, NonQuiescingSystemReportsError) {
  // P1 re-adds itself: never terminates.
  AbstractSystem system({AbstractProduction{"p1", Mask({1}), 0}}, Mask({1}));
  auto result = system.EnumerateCompleteSequences(/*max_length=*/16);
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(AbstractSystem, MaskToStringNamesProductions) {
  AbstractSystem system = SmallSystem();
  EXPECT_EQ(system.MaskToString(Mask({1, 3})), "{p1,p3}");
  EXPECT_EQ(system.MaskToString(0), "{}");
}

TEST(Section33System, EnumerationIsSelfConsistent) {
  AbstractSystem system = Section33System();
  EXPECT_EQ(system.num_productions(), 6u);
  auto sequences = system.EnumerateCompleteSequences().ValueOrDie();
  EXPECT_GT(sequences.size(), 1u);
  std::set<std::vector<size_t>> unique(sequences.begin(), sequences.end());
  EXPECT_EQ(unique.size(), sequences.size());
  for (const auto& sequence : sequences) {
    EXPECT_TRUE(system.IsValidSequence(sequence));
  }
  // Initial conflict set is {P1,P2,P3,P5} as in the paper's §3.3.
  EXPECT_EQ(system.initial(), Mask({1, 2, 3, 5}));
  // And a sequence violating the initial set is rejected.
  EXPECT_FALSE(system.IsValidSequence({3}));  // p4 not initially active
}

}  // namespace
}  // namespace dbps
