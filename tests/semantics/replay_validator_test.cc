#include <gtest/gtest.h>

#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "semantics/replay_validator.h"

namespace dbps {
namespace {

constexpr const char* kProgram = R"(
(relation t (v int))
(relation log (v int))
(rule consume (t ^v <v>) --> (remove 1) (make log ^v <v>))
(make t ^v 1)
(make t ^v 2)
)";

struct RunFixture {
  std::unique_ptr<WorkingMemory> pristine;
  RuleSetPtr rules;
  std::vector<FiringRecord> log;
};

RunFixture MakeValidRun() {
  RunFixture run;
  auto wm = std::make_unique<WorkingMemory>();
  run.rules = LoadProgram(kProgram, wm.get()).ValueOrDie();
  run.pristine = wm->Clone();
  SingleThreadEngine engine(wm.get(), run.rules);
  run.log = engine.Run().ValueOrDie().log;
  return run;
}

TEST(ReplayValidator, AcceptsValidLog) {
  RunFixture run = MakeValidRun();
  ASSERT_EQ(run.log.size(), 2u);
  EXPECT_TRUE(
      ValidateReplay(run.pristine.get(), run.rules, run.log).ok());
}

TEST(ReplayValidator, AcceptsEmptyLog) {
  RunFixture run = MakeValidRun();
  EXPECT_TRUE(ValidateReplay(run.pristine.get(), run.rules, {}).ok());
}

TEST(ReplayValidator, AcceptsPrefix) {
  // Definition 3.1 includes prefixes of valid sequences.
  RunFixture run = MakeValidRun();
  std::vector<FiringRecord> prefix{run.log[0]};
  EXPECT_TRUE(
      ValidateReplay(run.pristine.get(), run.rules, prefix).ok());
}

TEST(ReplayValidator, RejectsRefiredInstantiation) {
  RunFixture run = MakeValidRun();
  std::vector<FiringRecord> doubled{run.log[0], run.log[0]};
  Status st = ValidateReplay(run.pristine.get(), run.rules, doubled);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("not in the replayed conflict set"),
            std::string::npos);
}

TEST(ReplayValidator, RejectsUnknownInstantiation) {
  RunFixture run = MakeValidRun();
  FiringRecord bogus = run.log[0];
  bogus.key.wmes[0].first = 999;  // never-existing WME
  Status st = ValidateReplay(run.pristine.get(), run.rules, {bogus});
  EXPECT_FALSE(st.ok());
}

TEST(ReplayValidator, RejectsWrongDelta) {
  RunFixture run = MakeValidRun();
  std::vector<FiringRecord> tampered = run.log;
  Delta wrong;
  wrong.Delete(tampered[0].key.wmes[0].first);
  wrong.Create(Sym("log"), {Value::Int(42)});  // wrong payload
  tampered[0].delta = wrong;
  Status st = ValidateReplay(run.pristine.get(), run.rules, tampered);
  EXPECT_FALSE(st.ok());
  EXPECT_NE(st.message().find("differs from logged delta"),
            std::string::npos);
}

TEST(ReplayValidator, RejectsStaleVersion) {
  // A log claiming to fire against an outdated time tag must fail.
  RunFixture run = MakeValidRun();
  std::vector<FiringRecord> stale = run.log;
  stale[0].key.wmes[0].second += 17;
  EXPECT_FALSE(
      ValidateReplay(run.pristine.get(), run.rules, stale).ok());
}

TEST(ReplayValidator, OrderMattersWhenFiringsConflict) {
  // consume(t2) then consume(t1) is fine here (independent), but firing
  // an instantiation of a WME already removed by an earlier log entry
  // must fail.
  RunFixture run = MakeValidRun();
  // Build a log where entry 1 fires the same WME entry 0 already removed
  // — simulate by rewriting entry 1's key to entry 0's.
  std::vector<FiringRecord> conflicted = run.log;
  conflicted[1].key = conflicted[0].key;
  conflicted[1].delta = conflicted[0].delta;
  EXPECT_FALSE(
      ValidateReplay(run.pristine.get(), run.rules, conflicted).ok());
}

}  // namespace
}  // namespace dbps
