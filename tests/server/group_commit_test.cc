// Group commit durability: ack-after-fsync ordering, journal byte
// identity between the durable feed and the engine's own commit log,
// fsync amortization over commit batches, and whole-group failure on a
// failed fsync (no partial acknowledgement, sticky thereafter).

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dbps.h"

namespace dbps {
namespace {

using std::chrono::milliseconds;

constexpr const char* kPlainProgram = R"(
(relation item (id int))
)";

/// Engine + manager + durable journal feed, torn down in order.
class DurableServer {
 public:
  explicit DurableServer(DurabilityOptions durability,
                         ServerOptions server_options = {},
                         size_t workers = 2) {
    rules_ = LoadProgram(kPlainProgram, &wm_).ValueOrDie();
    pristine_ = wm_.Clone();
    DBPS_CHECK_OK(feed_.EnableDurability(std::move(durability)));
    server_options.durable_feed = &feed_;
    manager_ =
        std::make_unique<SessionManager>(&wm_, std::move(server_options));
    ParallelEngineOptions engine_options;
    engine_options.num_workers = workers;
    engine_options.external_source = manager_.get();
    engine_options.base.observer = feed_.MakeObserver();
    engine_ = std::make_unique<ParallelEngine>(&wm_, rules_, engine_options);
    manager_->BindEngine(engine_.get());
    thread_ = std::thread([this] { result_ = engine_->Run(); });
  }

  ~DurableServer() { Shutdown(); }

  void Shutdown() {
    manager_->Close();
    if (thread_.joinable()) thread_.join();
  }

  const RunResult& Finish() {
    Shutdown();
    EXPECT_TRUE(result_.ok()) << result_.status().ToString();
    return result_.ValueOrDie();
  }

  SessionManager& manager() { return *manager_; }
  JournalFeed& feed() { return feed_; }
  WorkingMemory& wm() { return wm_; }
  WorkingMemory* pristine() { return pristine_.get(); }

 private:
  WorkingMemory wm_;
  RuleSetPtr rules_;
  std::unique_ptr<WorkingMemory> pristine_;
  JournalFeed feed_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ParallelEngine> engine_;
  std::thread thread_;
  StatusOr<RunResult> result_{Status::Internal("engine not run")};
};

Delta MakeItem(int64_t id) {
  Delta delta;
  delta.Create(Sym("item"), {Value::Int(id)});
  return delta;
}

TEST(GroupCommitTest, DurableFileMatchesFeedAndReplays) {
  const std::string path =
      testing::TempDir() + "group_commit_journal.log";
  DurabilityOptions durability;
  durability.path = path;
  durability.open_mode = JournalOpenMode::kTruncate;  // hermetic re-runs
  durability.group_commit = true;
  DurableServer server(durability);
  auto session = server.manager().Connect("alice").ValueOrDie();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(session->Begin().ok());
    ASSERT_TRUE(session->Write(MakeItem(i)).ok());
    auto seq = session->Commit();
    ASSERT_TRUE(seq.ok()) << seq.status();
    // Ack-after-fsync: by the time Commit returns, this commit's line is
    // durable.
    EXPECT_GT(server.feed().durable_seq(), seq.ValueOrDie());
  }
  session->Close();
  server.Finish();

  DurabilityStats stats = server.feed().durability();
  EXPECT_EQ(stats.records_synced, 5u);
  EXPECT_EQ(stats.sync_failures, 0u);
  EXPECT_GE(stats.fsyncs, 1u);
  EXPECT_LE(stats.fsyncs, 5u);

  // The on-disk log is framed (lang/wal.h); its decoded payloads are
  // byte-identical to the feed's in-memory journal, with contiguous seqs
  // and a clean tail.
  std::ifstream in(path, std::ios::binary);
  std::stringstream file_bytes;
  file_bytes << in.rdbuf();
  const WalScan scan = ScanWalBuffer(file_bytes.str());
  EXPECT_EQ(scan.tail, WalTail::kClean) << scan.tail_detail;
  EXPECT_EQ(scan.truncated_bytes, 0u);
  ASSERT_EQ(scan.records.size(), 5u);
  std::string decoded;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    EXPECT_EQ(scan.records[i].seq, i);
    EXPECT_EQ(scan.records[i].type, WalRecordType::kDelta);
    decoded += scan.records[i].payload;
    decoded += '\n';
  }
  EXPECT_EQ(decoded, server.feed().TextFrom(0));

  // And it replays to the final database.
  ASSERT_TRUE(ReplayJournal(decoded, server.pristine()).ok());
  EXPECT_EQ(server.pristine()->Count(Sym("item")), 5u);
  std::remove(path.c_str());
}

TEST(GroupCommitTest, ConcurrentCommitsByteIdenticalToEngineLog) {
  DurabilityOptions durability;
  durability.group_commit = true;  // simulated device, no path
  ServerOptions server_options;
  server_options.session.max_txn_retries = 64;
  DurableServer server(durability, server_options, /*workers=*/4);
  constexpr int kThreads = 8;
  constexpr int kTxns = 10;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&server, t] {
      auto session =
          server.manager().Connect("w" + std::to_string(t)).ValueOrDie();
      for (int i = 0; i < kTxns; ++i) {
        Status st = session->Perform([&](Session& s) {
          DBPS_RETURN_NOT_OK(s.Begin());
          DBPS_RETURN_NOT_OK(s.Write(MakeItem(t * 1000 + i)));
          return s.Commit().status();
        });
        ASSERT_TRUE(st.ok()) << st;
      }
      session->Close();
    });
  }
  for (auto& t : threads) t.join();
  const RunResult& result = server.Finish();

  // Within this run, the durable feed must be the engine's commit log,
  // byte for byte and in the same order (the feed observes the ordered
  // commit stage, so parallel interleaving cannot reorder it).
  ASSERT_EQ(result.log.size(),
            static_cast<size_t>(kThreads * kTxns));
  std::vector<std::string> feed_lines = server.feed().LinesFrom(0);
  ASSERT_EQ(feed_lines.size(), result.log.size());
  for (size_t i = 0; i < result.log.size(); ++i) {
    auto line = AuditedJournalLine(result.log[i].delta, result.log[i].seq,
                                   &result.log[i].audit);
    ASSERT_TRUE(line.ok());
    EXPECT_EQ(feed_lines[i], line.ValueOrDie()) << "line " << i;
  }

  DurabilityStats stats = server.feed().durability();
  EXPECT_EQ(stats.records_synced, feed_lines.size());
  EXPECT_LE(stats.fsyncs, stats.records_synced);
  EXPECT_GE(stats.max_group, 1u);

  // The journal replays to the same final database.
  ASSERT_TRUE(
      ReplayJournal(server.feed().TextFrom(0), server.pristine()).ok());
  EXPECT_EQ(server.pristine()->Count(Sym("item")),
            static_cast<size_t>(kThreads * kTxns));
}

TEST(GroupCommitTest, FsyncFailureFailsWholeGroupWithNoPartialAck) {
  DurabilityOptions durability;
  durability.group_commit = true;
  DurableServer server(durability);
  auto session = server.manager().Connect("alice").ValueOrDie();

  // First commit succeeds normally.
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Write(MakeItem(1)).ok());
  ASSERT_TRUE(session->Commit().ok());
  const uint64_t durable_before = server.feed().durable_seq();

  // Arm the fsync failure: the next group's sync fails.
  FailpointRegistry::Instance().Configure("server.journal.fsync_fail",
                                          {.probability = 1.0});
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Write(MakeItem(2)).ok());
  Status st = session->Commit().status();
  EXPECT_TRUE(st.IsInternal()) << st;
  FailpointRegistry::Instance().DisableAll();

  // No partial acknowledgement: durable_seq did not advance.
  EXPECT_EQ(server.feed().durable_seq(), durable_before);
  EXPECT_GE(server.feed().durability().sync_failures, 1u);

  // Sticky: a WAL with a hole must never acknowledge again, even though
  // the failpoint is gone and later fsyncs would "succeed".
  ASSERT_TRUE(session->Begin().ok());
  ASSERT_TRUE(session->Write(MakeItem(3)).ok());
  EXPECT_TRUE(session->Commit().status().IsInternal());
  EXPECT_EQ(server.feed().durable_seq(), durable_before);
  EXPECT_EQ(session->stats().durable_ack_failures, 2u);

  session->Close();
  server.Finish();
}

TEST(GroupCommitTest, ConcurrentFsyncFailureNeverAcksNonDurableCommit) {
  DurabilityOptions durability;
  durability.group_commit = true;
  ServerOptions server_options;
  server_options.durable_wait_timeout = milliseconds(2000);
  DurableServer server(durability, server_options, /*workers=*/4);

  // Fail exactly one group fsync somewhere mid-run.
  FailpointRegistry::Instance().SetSeed(7);
  FailpointRegistry::Instance().Configure(
      "server.journal.fsync_fail", {.one_in = 1, .skip = 5, .max_fires = 1});

  constexpr int kThreads = 6;
  constexpr int kTxns = 8;
  std::mutex mu;
  std::vector<uint64_t> acked_seqs;
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto session =
          server.manager().Connect("w" + std::to_string(t)).ValueOrDie();
      for (int i = 0; i < kTxns; ++i) {
        if (!session->Begin().ok()) break;
        if (!session->Write(MakeItem(t * 100 + i)).ok()) continue;
        auto seq = session->Commit();
        if (seq.ok()) {
          std::lock_guard<std::mutex> guard(mu);
          acked_seqs.push_back(seq.ValueOrDie());
        } else {
          ++failed;
        }
      }
      session->Close();
    });
  }
  for (auto& t : threads) t.join();
  FailpointRegistry::Instance().DisableAll();
  server.Finish();

  // At least one group failed, and every acknowledged commit is below the
  // frozen durable high-water — an OK ack for a non-durable commit would
  // be a durability lie.
  EXPECT_GE(failed.load(), 1);
  const uint64_t durable = server.feed().durable_seq();
  for (uint64_t seq : acked_seqs) {
    EXPECT_LT(seq, durable) << "acked but not durable";
  }
  EXPECT_GE(server.feed().durability().sync_failures, 1u);
}

}  // namespace
}  // namespace dbps
