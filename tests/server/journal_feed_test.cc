// JournalFeed durability edges: WaitDurable before the fsync happened,
// on an already-durable seq, and after a sticky sync failure; and the
// journal open modes — append preserves history (the recovery
// contract), fail-if-exists refuses to clobber, truncate only destroys
// when explicitly asked.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "dbps.h"

namespace dbps {
namespace {

using std::chrono::milliseconds;

Delta MakeItem(int64_t id) {
  Delta delta;
  delta.Create(Sym("item"), {Value::Int(id)});
  return delta;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

TEST(JournalFeedTest, WaitDurableWithoutDurabilityOwesNothing) {
  JournalFeed feed;
  feed.Append(MakeItem(1));
  EXPECT_TRUE(feed.WaitDurable(0, milliseconds(0)).ok());
}

TEST(JournalFeedTest, WaitDurableTimesOutBeforeGroupFsync) {
  // Group mode syncs at batch boundaries; a bare Append stages the
  // record without fsyncing, so a bounded wait must time out — and say
  // so, distinctly from a sync failure.
  JournalFeed feed;
  DurabilityOptions durability;
  durability.group_commit = true;  // simulated device
  ASSERT_TRUE(feed.EnableDurability(durability).ok());
  feed.Append(MakeItem(1));
  Status st = feed.WaitDurable(0, milliseconds(50));
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("timed out"), std::string::npos) << st;
  EXPECT_EQ(feed.durable_seq(), 0u);
}

TEST(JournalFeedTest, WaitDurableAlreadyDurableReturnsImmediately) {
  JournalFeed feed;
  DurabilityOptions durability;  // per-commit: Append syncs inline
  ASSERT_TRUE(feed.EnableDurability(durability).ok());
  feed.Append(MakeItem(1));
  EXPECT_EQ(feed.durable_seq(), 1u);
  // Zero timeout: the verdict must already be in.
  EXPECT_TRUE(feed.WaitDurable(0, milliseconds(0)).ok());
}

TEST(JournalFeedTest, StartSeqInitializesTheDurableHorizon) {
  // After recovery the reopened feed starts at next_seq: every recovered
  // seq below it is already durable and must not block.
  JournalFeed feed;
  DurabilityOptions durability;
  durability.start_seq = 5;
  ASSERT_TRUE(feed.EnableDurability(durability).ok());
  EXPECT_EQ(feed.durable_seq(), 5u);
  EXPECT_TRUE(feed.WaitDurable(4, milliseconds(0)).ok());
  EXPECT_FALSE(feed.WaitDurable(5, milliseconds(10)).ok());
}

TEST(JournalFeedTest, WaitDurableAfterSyncFailureIsStickyInternal) {
  JournalFeed feed;
  DurabilityOptions durability;
  ASSERT_TRUE(feed.EnableDurability(durability).ok());
  feed.Append(MakeItem(1));  // seq 0 becomes durable
  FailpointRegistry::Instance().Configure("server.journal.fsync_fail",
                                          {.probability = 1.0});
  feed.Append(MakeItem(2));  // seq 1: its fsync fails
  FailpointRegistry::Instance().DisableAll();

  Status st = feed.WaitDurable(1, milliseconds(0));
  EXPECT_TRUE(st.IsInternal());
  EXPECT_NE(st.message().find("sync failed"), std::string::npos) << st;
  // Sticky: the failpoint is gone, but the log has a hole — later
  // records must not become durable either.
  feed.Append(MakeItem(3));
  EXPECT_FALSE(feed.WaitDurable(2, milliseconds(0)).ok());
  EXPECT_EQ(feed.durable_seq(), 1u);
  EXPECT_GE(feed.durability().sync_failures, 2u);
  // The already-durable prefix is still acknowledged.
  EXPECT_TRUE(feed.WaitDurable(0, milliseconds(0)).ok());
}

TEST(JournalFeedTest, DefaultOpenModeIsAppend) {
  EXPECT_EQ(DurabilityOptions{}.open_mode, JournalOpenMode::kAppend);
}

TEST(JournalFeedTest, AppendModePreservesHistoryAcrossReopen) {
  const std::string path = testing::TempDir() + "feed_append_journal.wal";
  std::remove(path.c_str());
  {
    JournalFeed feed;
    DurabilityOptions durability;
    durability.path = path;
    durability.open_mode = JournalOpenMode::kTruncate;
    ASSERT_TRUE(feed.EnableDurability(durability).ok());
    for (int i = 0; i < 3; ++i) feed.Append(MakeItem(i));
  }
  {
    // The restart: append mode with start_seq where the log left off.
    JournalFeed feed;
    DurabilityOptions durability;
    durability.path = path;
    durability.start_seq = 3;  // open_mode defaults to kAppend
    ASSERT_TRUE(feed.EnableDurability(durability).ok());
    for (int i = 3; i < 5; ++i) feed.Append(MakeItem(i));
  }
  const WalScan scan = ScanWalBuffer(ReadFileBytes(path));
  EXPECT_EQ(scan.tail, WalTail::kClean) << scan.tail_detail;
  ASSERT_EQ(scan.records.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(scan.records[i].seq, i);
  std::remove(path.c_str());
}

TEST(JournalFeedTest, TruncateModeStartsAFreshLog) {
  const std::string path = testing::TempDir() + "feed_truncate_journal.wal";
  for (int round = 0; round < 2; ++round) {
    JournalFeed feed;
    DurabilityOptions durability;
    durability.path = path;
    durability.open_mode = JournalOpenMode::kTruncate;
    ASSERT_TRUE(feed.EnableDurability(durability).ok());
    feed.Append(MakeItem(round));
  }
  const WalScan scan = ScanWalBuffer(ReadFileBytes(path));
  ASSERT_EQ(scan.records.size(), 1u);  // round 2 destroyed round 1
  EXPECT_EQ(scan.records[0].seq, 0u);
  std::remove(path.c_str());
}

TEST(JournalFeedTest, FailIfExistsRefusesToClobber) {
  const std::string path = testing::TempDir() + "feed_exclusive_journal.wal";
  std::remove(path.c_str());
  {
    JournalFeed feed;
    DurabilityOptions durability;
    durability.path = path;
    durability.open_mode = JournalOpenMode::kFailIfExists;
    ASSERT_TRUE(feed.EnableDurability(durability).ok());  // fresh: fine
    feed.Append(MakeItem(1));
  }
  JournalFeed second;
  DurabilityOptions durability;
  durability.path = path;
  durability.open_mode = JournalOpenMode::kFailIfExists;
  Status st = second.EnableDurability(durability);
  EXPECT_TRUE(st.IsAlreadyExists()) << st;
  // The existing log was not touched.
  EXPECT_EQ(ScanWalBuffer(ReadFileBytes(path)).records.size(), 1u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbps
