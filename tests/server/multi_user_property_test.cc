// Multi-user semantic-consistency property test (the PR's acceptance
// bar): K client sessions concurrently mutate working memory while the
// parallel engine fires rules against it, under BOTH lock protocols, and
// the interleaved commit log must replay per Definition 3.2 — client
// transactions as given inputs at their logged commit points, rule
// firings re-derived — onto the exact final database.

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "dbps.h"

namespace dbps {
namespace {

constexpr size_t kClientSessions = 4;
constexpr uint64_t kTxnsPerSession = 20;
constexpr int kMaxAttempts = 128;

// Clients file requests; rules triage and resolve them, contending with
// the clients (and each other) for the same tuples. Every third client
// transaction also takes a repeatable read over `resolved`, so rule
// commits victimize clients under rcrawa and block behind them under
// 2PL.
constexpr const char* kProgram = R"(
(relation request (id int) (state symbol))
(relation resolved (id int))

(rule triage :cost 50
  (request ^id <i> ^state new)
  -->
  (modify 1 ^state triaged))

(rule resolve :cost 50
  (request ^id <i> ^state triaged)
  -->
  (remove 1)
  (make resolved ^id <i>))
)";

struct Totals {
  uint64_t committed_writes = 0;
  uint64_t victim_aborts = 0;
};

Totals RunServer(LockProtocol protocol, AbortPolicy abort_policy,
                 WorkingMemory* wm, RuleSetPtr rules,
                 StatusOr<RunResult>* result_out) {
  SessionManager manager(wm);
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = protocol;
  options.abort_policy = abort_policy;
  options.external_source = &manager;
  ParallelEngine engine(wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result{Status::Internal("not run")};
  std::thread serve([&] { result = engine.Run(); });

  std::atomic<uint64_t> committed{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClientSessions; ++c) {
    clients.emplace_back([&, c] {
      auto session_or = manager.Connect("client-" + std::to_string(c));
      ASSERT_TRUE(session_or.ok()) << session_or.status();
      SessionPtr session = session_or.ValueOrDie();
      for (uint64_t i = 0; i < kTxnsPerSession; ++i) {
        bool done = false;
        for (int attempt = 0; attempt < kMaxAttempts && !done; ++attempt) {
          if (!session->Begin().ok()) break;
          if (i % 3 == 0 && !session->Read("resolved").ok()) continue;
          Delta delta;
          delta.Create(Sym("request"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i)),
                        Value::Symbol("new")});
          if (!session->Write(delta).ok()) continue;
          if (session->Commit().ok()) {
            committed.fetch_add(1);
            done = true;
          }
        }
        EXPECT_TRUE(done) << "client " << c << " txn " << i
                          << " never committed";
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();

  *result_out = std::move(result);
  Totals totals;
  totals.committed_writes = committed.load();
  totals.victim_aborts =
      manager.GetStats().closed_sessions.rc_victim_aborts;
  return totals;
}

class MultiUserPropertyTest
    : public ::testing::TestWithParam<std::pair<LockProtocol, AbortPolicy>> {
};

TEST_P(MultiUserPropertyTest, InterleavedLogIsSemanticallyConsistent) {
  auto [protocol, abort_policy] = GetParam();

  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  auto pristine = wm.Clone();

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  Totals totals =
      RunServer(protocol, abort_policy, &wm, rules, &result_or);
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult& result = result_or.ValueOrDie();

  const uint64_t expected = kClientSessions * kTxnsPerSession;
  EXPECT_EQ(totals.committed_writes, expected);
  EXPECT_GT(result.stats.client_commits, 0u);
  // Every request was triaged then resolved: two firings per insert.
  EXPECT_EQ(result.stats.firings, 2 * expected);
  EXPECT_EQ(wm.Count(Sym("request")), 0u);
  EXPECT_EQ(wm.Count(Sym("resolved")), expected);

  // Definition 3.2: replay the interleaved log single-threaded against
  // the pristine initial state...
  ASSERT_TRUE(ValidateReplay(pristine.get(), rules, result.log).ok());
  // ...and land on the identical final database.
  EXPECT_EQ(pristine->Count(Sym("request")), 0u);
  EXPECT_EQ(pristine->Count(Sym("resolved")), expected);
  EXPECT_EQ(pristine->TotalCount(), wm.TotalCount());
}

INSTANTIATE_TEST_SUITE_P(
    Protocols, MultiUserPropertyTest,
    ::testing::Values(
        std::make_pair(LockProtocol::kTwoPhase, AbortPolicy::kAbort),
        std::make_pair(LockProtocol::kRcRaWa, AbortPolicy::kAbort),
        std::make_pair(LockProtocol::kRcRaWa, AbortPolicy::kRevalidate)),
    [](const auto& info) {
      std::string name = info.param.first == LockProtocol::kTwoPhase
                             ? "TwoPhase"
                             : "RcRaWa";
      name += info.param.second == AbortPolicy::kAbort ? "Abort"
                                                       : "Revalidate";
      return name;
    });

}  // namespace
}  // namespace dbps
