// RecoveryManager: checkpoint restore exactness, torn/corrupt tail
// truncation on disk, fresh starts, mid-history logs, the full
// crash-restart-append cycle, and grouped vs ungrouped journals
// recovering to identical state.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dbps.h"

namespace dbps {
namespace {

constexpr const char* kPlainProgram = R"(
(relation item (id int))
)";

std::string TempPath(const std::string& name) {
  const std::string path = testing::TempDir() + name;
  std::remove(path.c_str());
  return path;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::stringstream bytes;
  bytes << in.rdbuf();
  return bytes.str();
}

WorkingMemory* LoadPlain(WorkingMemory* wm) {
  auto rules_or = LoadProgram(kPlainProgram, wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  return wm;
}

std::string MakeItemLine(int64_t id) {
  return "(delta (make item " + std::to_string(id) + "))";
}

/// Frames journal lines as consecutive delta records from `first_seq`.
std::string FramedDeltas(const std::vector<std::string>& lines,
                         uint64_t first_seq = 0) {
  std::string buf;
  for (size_t i = 0; i < lines.size(); ++i) {
    WalRecord record;
    record.seq = first_seq + i;
    record.type = WalRecordType::kDelta;
    record.payload = lines[i];
    EncodeWalRecord(record, &buf);
  }
  return buf;
}

TEST(RecoveryTest, MissingFileIsAFreshStart) {
  const std::string path = TempPath("recovery_missing.wal");
  WorkingMemory wm;
  LoadPlain(&wm);
  RecoveryManager recovery(path);
  auto stats_or = recovery.Recover(&wm);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  EXPECT_EQ(stats_or.ValueOrDie().records_scanned, 0u);
  EXPECT_EQ(stats_or.ValueOrDie().next_seq, 0u);
  EXPECT_EQ(wm.Count(Sym("item")), 0u);
}

TEST(RecoveryTest, ReplaysAWholeLogWithNoCheckpoint) {
  const std::string path = TempPath("recovery_plain.wal");
  WriteFileBytes(path, FramedDeltas({MakeItemLine(10), MakeItemLine(11),
                                     MakeItemLine(12)}));
  WorkingMemory wm;
  LoadPlain(&wm);
  auto stats_or = RecoveryManager(path).Recover(&wm);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  const RecoveryStats& stats = stats_or.ValueOrDie();
  EXPECT_EQ(stats.delta_records, 3u);
  EXPECT_FALSE(stats.used_checkpoint);
  EXPECT_EQ(stats.replayed_deltas, 3u);
  EXPECT_EQ(stats.next_seq, 3u);
  EXPECT_EQ(wm.Count(Sym("item")), 3u);
  std::remove(path.c_str());
}

TEST(RecoveryTest, TornTailIsTruncatedOnDisk) {
  const std::string path = TempPath("recovery_torn.wal");
  const std::string whole = FramedDeltas(
      {MakeItemLine(1), MakeItemLine(2), MakeItemLine(3)});
  const std::string head = FramedDeltas({MakeItemLine(1), MakeItemLine(2)});
  // Crash shape: the final frame only half reached the disk.
  WriteFileBytes(path,
                 whole.substr(0, head.size() + (whole.size() - head.size()) / 2));
  WorkingMemory wm;
  LoadPlain(&wm);
  auto stats_or = RecoveryManager(path).Recover(&wm);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  EXPECT_EQ(stats_or.ValueOrDie().tail, WalTail::kTorn);
  EXPECT_GT(stats_or.ValueOrDie().bytes_truncated, 0u);
  EXPECT_EQ(stats_or.ValueOrDie().next_seq, 2u);
  EXPECT_EQ(wm.Count(Sym("item")), 2u);
  // The invalid tail is gone from the FILE, not just ignored: a re-scan
  // is clean and the size is exactly the durable prefix.
  EXPECT_EQ(ReadFileBytes(path).size(), head.size());
  auto validate_or = RecoveryManager(path).Validate();
  ASSERT_TRUE(validate_or.ok());
  EXPECT_EQ(validate_or.ValueOrDie().tail, WalTail::kClean);
  EXPECT_EQ(validate_or.ValueOrDie().bytes_truncated, 0u);
  std::remove(path.c_str());
}

TEST(RecoveryTest, CorruptRecordDropsTheSuffix) {
  const std::string path = TempPath("recovery_corrupt.wal");
  std::string bytes = FramedDeltas(
      {MakeItemLine(1), MakeItemLine(2), MakeItemLine(3)});
  const size_t head = FramedDeltas({MakeItemLine(1)}).size();
  bytes[head + 10] ^= 0x20;  // bit rot inside the second frame
  WriteFileBytes(path, bytes);
  WorkingMemory wm;
  LoadPlain(&wm);
  auto stats_or = RecoveryManager(path).Recover(&wm);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  EXPECT_EQ(stats_or.ValueOrDie().tail, WalTail::kCorrupt);
  EXPECT_EQ(stats_or.ValueOrDie().next_seq, 1u);
  EXPECT_EQ(wm.Count(Sym("item")), 1u);
  EXPECT_EQ(ReadFileBytes(path).size(), head);
  std::remove(path.c_str());
}

TEST(RecoveryTest, MidHistoryLogWithoutCheckpointIsRejected) {
  const std::string path = TempPath("recovery_midhistory.wal");
  WriteFileBytes(path, FramedDeltas({MakeItemLine(1)}, /*first_seq=*/5));
  WorkingMemory wm;
  LoadPlain(&wm);
  auto stats_or = RecoveryManager(path).Recover(&wm);
  EXPECT_FALSE(stats_or.ok());
  EXPECT_TRUE(stats_or.status().IsInvalidArgument()) << stats_or.status();
  std::remove(path.c_str());
}

TEST(RecoveryTest, CheckpointRestorePreservesIdsTagsAndCounters) {
  const std::string path = TempPath("recovery_checkpoint.wal");
  const std::vector<std::string> lines = {
      MakeItemLine(1), MakeItemLine(2), "(delta (delete 1))",
      MakeItemLine(3), "(delta (make item 4) (make item 5))"};

  // Build the fenced state by replaying the first three lines, exactly
  // as a running engine would have, and checkpoint it at fence 3.
  WorkingMemory fenced;
  LoadPlain(&fenced);
  for (size_t i = 0; i < 3; ++i) {
    auto delta_or = DeltaFromJournalLine(lines[i]);
    ASSERT_TRUE(delta_or.ok());
    ASSERT_TRUE(fenced.Apply(delta_or.ValueOrDie()).ok());
  }
  auto checkpoint_or = CheckpointToSource(fenced, /*seq=*/3);
  ASSERT_TRUE(checkpoint_or.ok()) << checkpoint_or.status();

  std::string bytes = FramedDeltas({lines[0], lines[1], lines[2]});
  WalRecord checkpoint;
  checkpoint.seq = 3;
  checkpoint.type = WalRecordType::kCheckpoint;
  checkpoint.payload = checkpoint_or.ValueOrDie();
  EncodeWalRecord(checkpoint, &bytes);
  bytes += FramedDeltas({lines[3], lines[4]}, /*first_seq=*/3);
  WriteFileBytes(path, bytes);

  WorkingMemory recovered;
  LoadPlain(&recovered);
  auto stats_or = RecoveryManager(path).Recover(&recovered);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  const RecoveryStats& stats = stats_or.ValueOrDie();
  EXPECT_TRUE(stats.used_checkpoint);
  EXPECT_EQ(stats.checkpoint_seq, 3u);
  EXPECT_EQ(stats.replayed_deltas, 2u);  // only the suffix past the fence
  EXPECT_EQ(stats.next_seq, 5u);

  // Identity, not just content: the checkpoint path must equal a full
  // replay byte for byte — ids, time tags, and all three counters.
  WorkingMemory replayed;
  LoadPlain(&replayed);
  std::string text;
  for (const std::string& line : lines) text += line + "\n";
  ASSERT_TRUE(ReplayJournal(text, &replayed).ok());
  EXPECT_EQ(CanonicalWmDump(recovered), CanonicalWmDump(replayed));
  std::remove(path.c_str());
}

/// Engine + durable journal against a real file, as the tools wire it.
struct MiniServer {
  explicit MiniServer(DurabilityOptions durability, bool recover_first) {
    rules = LoadProgram(kPlainProgram, &wm).ValueOrDie();
    if (recover_first) {
      RecoveryManager recovery(durability.path);
      auto stats_or = recovery.Recover(&wm);
      DBPS_CHECK(stats_or.ok()) << stats_or.status();
      recovered = stats_or.ValueOrDie();
      durability.open_mode = JournalOpenMode::kAppend;
      durability.start_seq = recovered.next_seq;
    }
    start_seq = durability.start_seq;
    DBPS_CHECK_OK(feed.EnableDurability(std::move(durability)));
    DBPS_CHECK_OK(feed.EnableCheckpoints(&wm));
    ServerOptions server_options;
    server_options.durable_feed = &feed;
    manager = std::make_unique<SessionManager>(&wm, server_options);
    ParallelEngineOptions engine_options;
    engine_options.num_workers = 2;
    engine_options.external_source = manager.get();
    engine_options.start_seq = start_seq;
    engine_options.base.observer = feed.MakeObserver();
    engine = std::make_unique<ParallelEngine>(&wm, rules, engine_options);
    manager->BindEngine(engine.get());
    thread = std::thread([this] { result = engine->Run(); });
  }

  ~MiniServer() { Finish(); }

  void Finish() {
    if (!thread.joinable()) return;
    manager->Close();
    thread.join();
    EXPECT_TRUE(result.ok()) << result.status();
  }

  void CommitItems(int64_t first, int64_t count) {
    auto session = manager->Connect("writer").ValueOrDie();
    for (int64_t i = first; i < first + count; ++i) {
      ASSERT_TRUE(session->Begin().ok());
      Delta delta;
      delta.Create(Sym("item"), {Value::Int(i)});
      ASSERT_TRUE(session->Write(delta).ok());
      auto seq = session->Commit();
      ASSERT_TRUE(seq.ok()) << seq.status();
    }
    session->Close();
  }

  WorkingMemory wm;
  RuleSetPtr rules;
  JournalFeed feed;
  RecoveryStats recovered;
  uint64_t start_seq = 0;
  std::unique_ptr<SessionManager> manager;
  std::unique_ptr<ParallelEngine> engine;
  std::thread thread;
  StatusOr<RunResult> result{Status::Internal("engine not run")};
};

TEST(RecoveryTest, GroupedAndUngroupedJournalsRecoverIdentically) {
  // The same sequential workload under per-commit fsync and group
  // commit: the framing and payloads must be identical, and so must the
  // recovered databases.
  std::string dumps[2];
  for (int grouped = 0; grouped < 2; ++grouped) {
    const std::string path = TempPath(
        grouped ? "recovery_grouped.wal" : "recovery_ungrouped.wal");
    {
      DurabilityOptions durability;
      durability.path = path;
      durability.open_mode = JournalOpenMode::kTruncate;
      durability.group_commit = grouped != 0;
      MiniServer server(durability, /*recover_first=*/false);
      server.CommitItems(0, 6);
    }
    WorkingMemory recovered;
    LoadPlain(&recovered);
    auto stats_or = RecoveryManager(path).Recover(&recovered);
    ASSERT_TRUE(stats_or.ok()) << stats_or.status();
    EXPECT_EQ(stats_or.ValueOrDie().next_seq, 6u);
    EXPECT_EQ(recovered.Count(Sym("item")), 6u);
    dumps[grouped] = CanonicalWmDump(recovered);
    std::remove(path.c_str());
  }
  EXPECT_EQ(dumps[0], dumps[1]);
}

TEST(RecoveryTest, RestartCycleResumesWhereItDied) {
  // Run, stop, recover + append, run again, recover again: the second
  // life's commits extend the same log with contiguous seqs, and the
  // final recovery sees both lives.
  const std::string path = TempPath("recovery_restart.wal");
  {
    DurabilityOptions durability;
    durability.path = path;
    durability.open_mode = JournalOpenMode::kTruncate;
    durability.group_commit = true;
    MiniServer first(durability, /*recover_first=*/false);
    first.CommitItems(0, 4);
  }
  {
    DurabilityOptions durability;
    durability.path = path;
    MiniServer second(durability, /*recover_first=*/true);
    EXPECT_EQ(second.recovered.next_seq, 4u);
    EXPECT_EQ(second.wm.Count(Sym("item")), 4u);
    second.CommitItems(100, 3);
  }
  WorkingMemory recovered;
  LoadPlain(&recovered);
  auto stats_or = RecoveryManager(path).Recover(&recovered);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  EXPECT_EQ(stats_or.ValueOrDie().next_seq, 7u);
  EXPECT_EQ(recovered.Count(Sym("item")), 7u);
  // Both lives' items are present.
  EXPECT_EQ(recovered.Lookup(Sym("item"), 0, Value::Int(3)).size(), 1u);
  EXPECT_EQ(recovered.Lookup(Sym("item"), 0, Value::Int(102)).size(), 1u);
  std::remove(path.c_str());
}

TEST(RecoveryTest, EngineCheckpointsFenceAndAccelerateRecovery) {
  // Auto-checkpoints every 2 records: recovery must restore from the
  // LAST checkpoint and replay only the suffix, landing on the same
  // state as a full replay.
  const std::string path = TempPath("recovery_auto_checkpoint.wal");
  {
    DurabilityOptions durability;
    durability.path = path;
    durability.open_mode = JournalOpenMode::kTruncate;
    durability.group_commit = true;
    durability.checkpoint_every = 2;
    MiniServer server(durability, /*recover_first=*/false);
    server.CommitItems(0, 7);
  }
  const WalScan scan = ScanWalBuffer(ReadFileBytes(path));
  ASSERT_EQ(scan.tail, WalTail::kClean) << scan.tail_detail;
  uint64_t checkpoints = 0;
  std::string text;
  for (const WalRecord& record : scan.records) {
    if (record.type == WalRecordType::kCheckpoint) {
      ++checkpoints;
    } else {
      text += record.payload + "\n";
    }
  }
  EXPECT_GE(checkpoints, 2u);

  WorkingMemory recovered;
  LoadPlain(&recovered);
  auto stats_or = RecoveryManager(path).Recover(&recovered);
  ASSERT_TRUE(stats_or.ok()) << stats_or.status();
  EXPECT_TRUE(stats_or.ValueOrDie().used_checkpoint);
  EXPECT_LT(stats_or.ValueOrDie().replayed_deltas, 7u);
  EXPECT_EQ(stats_or.ValueOrDie().next_seq, 7u);

  WorkingMemory replayed;
  LoadPlain(&replayed);
  ASSERT_TRUE(ReplayJournal(text, &replayed).ok());
  EXPECT_EQ(CanonicalWmDump(recovered), CanonicalWmDump(replayed));
  std::remove(path.c_str());
}

}  // namespace
}  // namespace dbps
