// SessionManager / Session unit tests: admission control, the external
// transaction lifecycle, lock-protocol behavior of client transactions
// (2PL blocking vs Rc/Ra/Wa victimization, §4.3), and journal-feed
// durability.

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>

#include <gtest/gtest.h>

#include "dbps.h"

namespace dbps {
namespace {

using std::chrono::milliseconds;

// Two relations, no rules: the engine idles as a pure transaction server
// until the manager drains.
constexpr const char* kPlainProgram = R"(
(relation item (id int))
(relation out (id int))
)";

// A server program whose rule reacts to client inserts.
constexpr const char* kServeProgram = R"(
(relation inbox (id int))
(relation done (id int))
(rule serve
  (inbox ^id <i>)
  -->
  (remove 1)
  (make done ^id <i>))
)";

/// Engine + manager + serve thread, torn down in order.
class TestServer {
 public:
  explicit TestServer(const char* program, ServerOptions server_options = {},
                      ParallelEngineOptions engine_options = {}) {
    rules_ = LoadProgram(program, &wm_).ValueOrDie();
    pristine_ = wm_.Clone();
    manager_ =
        std::make_unique<SessionManager>(&wm_, std::move(server_options));
    engine_options.external_source = manager_.get();
    engine_ = std::make_unique<ParallelEngine>(&wm_, rules_, engine_options);
    manager_->BindEngine(engine_.get());
    thread_ = std::thread([this] { result_ = engine_->Run(); });
  }

  ~TestServer() { Shutdown(); }

  /// Closes the manager and joins the engine; idempotent.
  void Shutdown() {
    manager_->Close();
    if (thread_.joinable()) thread_.join();
  }

  const RunResult& Finish() {
    Shutdown();
    EXPECT_TRUE(result_.ok()) << result_.status().ToString();
    return result_.ValueOrDie();
  }

  WorkingMemory& wm() { return wm_; }
  WorkingMemory* pristine() { return pristine_.get(); }
  RuleSetPtr rules() { return rules_; }
  SessionManager& manager() { return *manager_; }

 private:
  WorkingMemory wm_;
  RuleSetPtr rules_;
  std::unique_ptr<WorkingMemory> pristine_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ParallelEngine> engine_;
  std::thread thread_;
  StatusOr<RunResult> result_{Status::Internal("engine not run")};
};

Delta MakeItem(int64_t id, const char* relation = "item") {
  Delta delta;
  delta.Create(Sym(relation), {Value::Int(id)});
  return delta;
}

TEST(SessionManagerTest, ConnectFailsWithoutServingEngine) {
  WorkingMemory wm;
  auto rules = LoadProgram(kPlainProgram, &wm).ValueOrDie();
  ServerOptions options;
  options.connect_timeout = milliseconds(50);
  SessionManager manager(&wm, options);
  ParallelEngine engine(&wm, rules, {});  // never Run()
  manager.BindEngine(&engine);
  auto session = manager.Connect("early");
  EXPECT_TRUE(session.status().IsUnavailable()) << session.status();
}

TEST(SessionManagerTest, ConnectFailsAfterClose) {
  TestServer server(kPlainProgram);
  server.Finish();
  auto session = server.manager().Connect("late");
  EXPECT_TRUE(session.status().IsUnavailable()) << session.status();
}

TEST(SessionManagerTest, MaxSessionsAdmissionControl) {
  ServerOptions options;
  options.max_sessions = 2;
  TestServer server(kPlainProgram, options);
  auto a = server.manager().Connect("a").ValueOrDie();
  auto b = server.manager().Connect("b").ValueOrDie();
  auto c = server.manager().Connect("c");
  EXPECT_TRUE(c.status().IsResourceExhausted()) << c.status();
  a->Close();
  auto d = server.manager().Connect("d");
  EXPECT_TRUE(d.ok()) << d.status();
  d.ValueOrDie()->Close();
  b->Close();
  auto stats = server.manager().GetStats();
  EXPECT_EQ(stats.sessions_admitted, 3u);
  EXPECT_EQ(stats.sessions_rejected, 1u);
}

TEST(SessionTest, CommitAppearsInLogAndReplays) {
  TestServer server(kPlainProgram);
  auto session = server.manager().Connect("alice").ValueOrDie();

  ASSERT_TRUE(session->Begin().ok());
  auto rows = session->Read("item");
  ASSERT_TRUE(rows.ok()) << rows.status();
  EXPECT_TRUE(rows.ValueOrDie().empty());
  ASSERT_TRUE(session->Write(MakeItem(7)).ok());
  auto seq = session->Commit();
  ASSERT_TRUE(seq.ok()) << seq.status();
  session->Close();

  const RunResult& result = server.Finish();
  EXPECT_EQ(server.wm().Count(Sym("item")), 1u);
  ASSERT_EQ(result.log.size(), 1u);
  EXPECT_TRUE(IsClientFiring(result.log[0].key));
  EXPECT_EQ(result.log[0].key.rule_name,
            std::string(kClientRulePrefix) + "alice");
  EXPECT_EQ(result.stats.client_commits, 1u);
  EXPECT_EQ(result.stats.firings, 0u);

  // Definition 3.2, multi-user form: the log replays as given input.
  ASSERT_TRUE(
      ValidateReplay(server.pristine(), server.rules(), result.log).ok());
  EXPECT_EQ(server.pristine()->Count(Sym("item")), 1u);
}

TEST(SessionTest, EmptyCommitLeavesNoLogRecord) {
  TestServer server(kPlainProgram);
  auto session = server.manager().Connect("alice").ValueOrDie();
  ASSERT_TRUE(session->Begin().ok());
  auto seq = session->Commit();
  ASSERT_TRUE(seq.ok()) << seq.status();
  session->Close();
  const RunResult& result = server.Finish();
  EXPECT_TRUE(result.log.empty());
  EXPECT_EQ(result.stats.client_commits, 1u);
}

TEST(SessionTest, OperationsRequireOpenTransaction) {
  TestServer server(kPlainProgram);
  auto session = server.manager().Connect("alice").ValueOrDie();
  EXPECT_TRUE(session->Read("item").status().IsInvalidArgument());
  EXPECT_TRUE(session->Write(MakeItem(1)).IsInvalidArgument());
  EXPECT_TRUE(session->Commit().status().IsInvalidArgument());
  ASSERT_TRUE(session->Begin().ok());
  EXPECT_TRUE(session->Begin().IsInvalidArgument());  // no nesting
  session->Abort();
  EXPECT_EQ(session->stats().aborts, 1u);
  session->Close();
}

TEST(SessionTest, ReadUnknownRelationKeepsTransactionAlive) {
  TestServer server(kPlainProgram);
  auto session = server.manager().Connect("alice").ValueOrDie();
  ASSERT_TRUE(session->Begin().ok());
  EXPECT_TRUE(session->Read("nope").status().IsNotFound());
  EXPECT_TRUE(session->in_txn());
  EXPECT_TRUE(session->Commit().ok());
  session->Close();
}

TEST(SessionTest, WriteToDeadWmeAbortsTransaction) {
  TestServer server(kPlainProgram);
  auto session = server.manager().Connect("alice").ValueOrDie();
  ASSERT_TRUE(session->Begin().ok());
  Delta delta;
  delta.Modify(999, {{0, Value::Int(1)}});
  EXPECT_TRUE(session->Write(delta).IsNotFound());
  EXPECT_FALSE(session->in_txn());  // failed writes poison the txn
  EXPECT_EQ(session->stats().aborts, 1u);
  session->Close();
}

TEST(SessionTest, TxnGateAppliesBackpressure) {
  ServerOptions options;
  options.max_concurrent_txns = 1;
  options.session.txn_admission_timeout = milliseconds(50);
  TestServer server(kPlainProgram, options);
  auto a = server.manager().Connect("a").ValueOrDie();
  auto b = server.manager().Connect("b").ValueOrDie();

  ASSERT_TRUE(a->Begin().ok());
  Status blocked = b->Begin();
  EXPECT_TRUE(blocked.IsResourceExhausted()) << blocked;
  ASSERT_TRUE(a->Commit().ok());
  EXPECT_TRUE(b->Begin().ok());
  EXPECT_TRUE(b->Commit().ok());
  a->Close();
  b->Close();
  server.Finish();
  auto stats = server.manager().GetStats();
  EXPECT_GE(stats.txn_gate.timeouts, 1u);
  EXPECT_GE(stats.txn_gate.waited, 1u);
}

// §4.3 under kRcRaWa: a writer's Wa is granted over an outstanding Rc;
// its COMMIT aborts the Rc holder — here a client repeatable reader.
TEST(SessionTest, RcRaWaWriterCommitVictimizesReader) {
  ParallelEngineOptions engine_options;
  engine_options.protocol = LockProtocol::kRcRaWa;
  TestServer server(kPlainProgram, {}, engine_options);
  auto reader = server.manager().Connect("reader").ValueOrDie();
  auto writer = server.manager().Connect("writer").ValueOrDie();

  ASSERT_TRUE(reader->Begin().ok());
  ASSERT_TRUE(reader->Read("item").ok());  // relation-level Rc, held

  ASSERT_TRUE(writer->Begin().ok());
  ASSERT_TRUE(writer->Write(MakeItem(1)).ok());  // Wa granted, no block
  ASSERT_TRUE(writer->Commit().ok());            // commit settles victims

  auto seq = reader->Commit();
  EXPECT_TRUE(seq.status().IsAborted()) << seq.status();
  EXPECT_EQ(reader->stats().rc_victim_aborts, 1u);

  // The reader can start over and see the committed write.
  ASSERT_TRUE(reader->Begin().ok());
  auto rows = reader->Read("item");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.ValueOrDie().size(), 1u);
  ASSERT_TRUE(reader->Commit().ok());
  reader->Close();
  writer->Close();
  const RunResult& result = server.Finish();
  EXPECT_EQ(result.stats.client_commits, 2u);
  EXPECT_EQ(result.stats.client_aborts, 1u);
}

// Query() Rc-locks every relation its LHS touches, so it is victimized
// exactly like Read().
TEST(SessionTest, QueryHoldsRepeatableReadLocks) {
  ParallelEngineOptions engine_options;
  engine_options.protocol = LockProtocol::kRcRaWa;
  TestServer server(kPlainProgram, {}, engine_options);
  auto reader = server.manager().Connect("reader").ValueOrDie();
  auto writer = server.manager().Connect("writer").ValueOrDie();

  ASSERT_TRUE(reader->Begin().ok());
  auto rows = reader->Query("(item ^id <i>)");
  ASSERT_TRUE(rows.ok()) << rows.status();

  ASSERT_TRUE(writer->Begin().ok());
  ASSERT_TRUE(writer->Write(MakeItem(2)).ok());
  ASSERT_TRUE(writer->Commit().ok());

  EXPECT_TRUE(reader->Commit().status().IsAborted());
  reader->Close();
  writer->Close();
  server.Finish();
}

// Under kTwoPhase the same conflict BLOCKS the writer until the reader
// commits (Table 4.1: no mode is granted over a held Rc).
TEST(SessionTest, TwoPhaseWriterBlocksBehindReader) {
  ParallelEngineOptions engine_options;
  engine_options.protocol = LockProtocol::kTwoPhase;
  TestServer server(kPlainProgram, {}, engine_options);
  auto reader = server.manager().Connect("reader").ValueOrDie();
  auto writer = server.manager().Connect("writer").ValueOrDie();

  ASSERT_TRUE(reader->Begin().ok());
  ASSERT_TRUE(reader->Read("item").ok());

  std::atomic<bool> writer_committed{false};
  std::thread writing([&] {
    ASSERT_TRUE(writer->Begin().ok());
    ASSERT_TRUE(writer->Write(MakeItem(3)).ok());  // blocks on reader's Rc
    ASSERT_TRUE(writer->Commit().ok());
    writer_committed.store(true);
  });

  std::this_thread::sleep_for(milliseconds(100));
  EXPECT_FALSE(writer_committed.load());  // still blocked
  ASSERT_TRUE(reader->Commit().ok());     // release -> writer proceeds
  writing.join();
  EXPECT_TRUE(writer_committed.load());
  EXPECT_EQ(reader->stats().rc_victim_aborts, 0u);
  reader->Close();
  writer->Close();
  const RunResult& result = server.Finish();
  EXPECT_EQ(result.stats.client_commits, 2u);
  EXPECT_EQ(result.stats.client_aborts, 0u);
}

// Client inserts activate rules; the journal feed sees BOTH kinds of
// commit in commit order, and replaying it reproduces the final state.
TEST(SessionTest, JournalFeedReplaysClientAndRuleCommits) {
  JournalFeed feed;
  ParallelEngineOptions engine_options;
  engine_options.base.observer = feed.MakeObserver();
  TestServer server(kServeProgram, {}, engine_options);
  auto session = server.manager().Connect("alice").ValueOrDie();

  for (int64_t id = 0; id < 3; ++id) {
    ASSERT_TRUE(session->Begin().ok());
    ASSERT_TRUE(session->Write(MakeItem(id, "inbox")).ok());
    ASSERT_TRUE(session->Commit().ok());
  }
  // Durability subscription: wait for the rule commits to land too.
  feed.WaitForSize(6, milliseconds(5000));
  session->Close();
  const RunResult& result = server.Finish();

  EXPECT_EQ(result.stats.client_commits, 3u);
  EXPECT_EQ(result.stats.firings, 3u);
  EXPECT_EQ(server.wm().Count(Sym("inbox")), 0u);
  EXPECT_EQ(server.wm().Count(Sym("done")), 3u);
  ASSERT_EQ(feed.size(), result.log.size());
  EXPECT_EQ(feed.serialize_errors(), 0u);
  EXPECT_EQ(feed.LinesFrom(feed.size() - 1).size(), 1u);  // cursor drain

  // Journal round trip: text replays to the exact final database.
  WorkingMemory replayed;
  ASSERT_TRUE(LoadProgram(kServeProgram, &replayed).ok());
  ASSERT_TRUE(ReplayJournal(feed.TextFrom(0), &replayed).ok());
  EXPECT_EQ(replayed.Count(Sym("inbox")), 0u);
  EXPECT_EQ(replayed.Count(Sym("done")), 3u);
}

// A client commit whose delta carries the halt flag stops the server the
// same way a rule's (halt) action would.
TEST(SessionTest, ClientHaltStopsEngine) {
  TestServer server(kPlainProgram);
  auto session = server.manager().Connect("alice").ValueOrDie();
  ASSERT_TRUE(session->Begin().ok());
  Delta halt;
  halt.SetHalt();
  ASSERT_TRUE(session->Write(halt).ok());
  ASSERT_TRUE(session->Commit().ok());
  // The engine run ends even though the manager is still accepting.
  const RunResult& result = server.Finish();
  EXPECT_EQ(result.stats.halted, 1u);
  // Post-halt transactions are refused.
  EXPECT_TRUE(session->Begin().IsUnavailable());
  session->Close();
}

TEST(AdmissionGateTest, BlocksAtCapacityAndTimesOut) {
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(milliseconds(10)).ok());
  EXPECT_EQ(gate.in_use(), 1u);
  EXPECT_TRUE(gate.Enter(milliseconds(10)).IsResourceExhausted());
  gate.Leave();
  ASSERT_TRUE(gate.Enter(milliseconds(10)).ok());
  gate.Leave();
  auto stats = gate.GetStats();
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.timeouts, 1u);
  EXPECT_EQ(stats.peak_in_use, 1u);
}

TEST(AdmissionGateTest, UnboundedNeverBlocks) {
  AdmissionGate gate(0);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(gate.Enter(milliseconds(0)).ok());
  }
  EXPECT_EQ(gate.in_use(), 100u);
}

TEST(AdmissionGateTest, CloseFailsWaiters) {
  AdmissionGate gate(1);
  ASSERT_TRUE(gate.Enter(milliseconds(10)).ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(milliseconds(50));
    gate.Close();
  });
  EXPECT_TRUE(gate.Enter(milliseconds(5000)).IsUnavailable());
  closer.join();
  EXPECT_TRUE(gate.Enter(milliseconds(0)).IsUnavailable());
}

}  // namespace
}  // namespace dbps
