// Cross-module property: the §5 multiprocessor model's commit order is
// always a member of ES_single of the corresponding abstract production
// system (Definition 3.2 holds for the idealized model too — its commits
// are serialized by construction, and this verifies our simulator
// respects that).

#include <gtest/gtest.h>

#include "semantics/abstract_ps.h"
#include "sim/paper_scenarios.h"
#include "sim/speedup_model.h"
#include "util/random.h"

namespace dbps {
namespace {

/// Projects a SimConfig onto the abstract add/delete-set model.
AbstractSystem ToAbstract(const sim::SimConfig& config) {
  std::vector<AbstractProduction> productions;
  for (const auto& sim_production : config.productions) {
    AbstractProduction production;
    production.name = sim_production.name;
    for (size_t p : sim_production.add_set) {
      production.add_set |= 1ULL << p;
    }
    for (size_t p : sim_production.delete_set) {
      production.delete_set |= 1ULL << p;
    }
    productions.push_back(std::move(production));
  }
  ConflictMask initial = 0;
  for (size_t p : config.initial) initial |= 1ULL << p;
  return AbstractSystem(std::move(productions), initial);
}

TEST(SimSemantics, PaperScenariosCommitOrdersAreValidSequences) {
  for (const auto& config :
       {sim::Figure51Config(), sim::Figure52Config(), sim::Figure53Config(),
        sim::Figure54Config()}) {
    AbstractSystem abstract = ToAbstract(config);
    auto result = sim::SimulateMultiThread(config);
    EXPECT_TRUE(abstract.IsValidSequence(result.commit_order));
  }
}

class RandomSimScenario : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSimScenario, CommitOrderIsAlwaysValid) {
  Random rng(GetParam());
  const size_t n = 3 + rng.Uniform(8);  // 3..10 productions

  sim::SimConfig config;
  for (size_t p = 0; p < n; ++p) {
    sim::SimProduction production;
    production.name = "p" + std::to_string(p + 1);
    production.exec_time = 1.0 + static_cast<double>(rng.Uniform(8));
    // Delete sets: up to 2 victims. Add sets: only higher-numbered
    // productions, so activation is acyclic and the system quiesces.
    for (int d = 0; d < 2; ++d) {
      if (rng.Bernoulli(0.3)) {
        production.delete_set.push_back(rng.Uniform(n));
      }
    }
    if (p + 1 < n && rng.Bernoulli(0.4)) {
      production.add_set.push_back(
          p + 1 + rng.Uniform(n - p - 1));
    }
    config.productions.push_back(std::move(production));
  }
  // Initial conflict set: a random nonempty subset, in random order.
  std::vector<size_t> all(n);
  for (size_t p = 0; p < n; ++p) all[p] = p;
  rng.Shuffle(&all);
  size_t initial_size = 1 + rng.Uniform(n);
  config.initial.assign(all.begin(), all.begin() + initial_size);
  config.num_processors = 1 + rng.Uniform(5);

  AbstractSystem abstract = ToAbstract(config);
  auto result = sim::SimulateMultiThread(config);

  EXPECT_TRUE(abstract.IsValidSequence(result.commit_order))
      << "seed " << GetParam() << ": commit order "
      << abstract.SequenceToString(result.commit_order)
      << " is not a valid single-thread sequence";

  // Sanity: the makespan is at least the longest committed production
  // and at most the serial sum of everything that ran.
  double longest = 0, serial_sum = 0;
  for (size_t p : result.commit_order) {
    longest = std::max(longest, config.productions[p].exec_time);
    serial_sum += config.productions[p].exec_time;
  }
  serial_sum += result.wasted_time;
  if (!result.commit_order.empty()) {
    EXPECT_GE(result.makespan + 1e-9, longest);
    EXPECT_LE(result.makespan, serial_sum + 1e-9);
  }

  // Useful + wasted time is exactly what the processors did.
  EXPECT_GE(result.useful_time, longest - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSimScenario,
                         ::testing::Range<uint64_t>(1, 41));

}  // namespace
}  // namespace dbps
