// Tests of the §5 idealized-multiprocessor model, asserting every number
// the paper prints for Figures 5.1–5.4 and Example 5.1.

#include <gtest/gtest.h>

#include "sim/paper_scenarios.h"
#include "sim/speedup_model.h"

namespace dbps {
namespace sim {
namespace {

TEST(SpeedupModel, Figure51BaseCase) {
  SimConfig config = Figure51Config();
  // T_single(σ1) = T(P3)+T(P2)+T(P4) = 2+3+4 = 9 (paper, §5).
  auto t_single = SingleThreadTime(config, Sigma1());
  ASSERT_TRUE(t_single.ok()) << t_single.status();
  EXPECT_DOUBLE_EQ(t_single.ValueOrDie(), 9.0);

  MultiThreadResult result = SimulateMultiThread(config);
  // T_multi = 4; speedup 9/4 = 2.25 (paper, Figure 5.1).
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  EXPECT_DOUBLE_EQ(t_single.ValueOrDie() / result.makespan, 2.25);
  // P1 is aborted by P2's commit ("Aborted by P2" in Figure 5.1).
  EXPECT_EQ(result.aborts, 1u);
  ASSERT_EQ(result.commit_order.size(), 3u);
  // Commit order: P3 (t=2), P2 (t=3), P4 (t=4).
  EXPECT_EQ(result.commit_order,
            (std::vector<size_t>{2, 1, 3}));
  // P1 ran from 0 until aborted at t=3.
  EXPECT_DOUBLE_EQ(result.wasted_time, 3.0);
}

TEST(SpeedupModel, Figure52DegreeOfConflict) {
  SimConfig config = Figure52Config();
  // T_single(σ2) = T(P3)+T(P2) = 5 (paper, §5.1).
  auto t_single = SingleThreadTime(config, Sigma2());
  ASSERT_TRUE(t_single.ok());
  EXPECT_DOUBLE_EQ(t_single.ValueOrDie(), 5.0);

  MultiThreadResult result = SimulateMultiThread(config);
  // T_multi = 3; speedup 5/3 ≈ 1.67 (paper, Figure 5.2).
  EXPECT_DOUBLE_EQ(result.makespan, 3.0);
  EXPECT_NEAR(t_single.ValueOrDie() / result.makespan, 1.67, 0.01);
  // Both P1 and P4 are aborted under the higher degree of conflict.
  EXPECT_EQ(result.aborts, 2u);
  EXPECT_EQ(result.commit_order, (std::vector<size_t>{2, 1}));
}

TEST(SpeedupModel, Figure53ExecutionTimeVariation) {
  SimConfig config = Figure53Config();
  // T(P2)+1 ⇒ T_single(σ1) = 2+4+4 = 10 (paper, §5.2).
  auto t_single = SingleThreadTime(config, Sigma1());
  ASSERT_TRUE(t_single.ok());
  EXPECT_DOUBLE_EQ(t_single.ValueOrDie(), 10.0);

  MultiThreadResult result = SimulateMultiThread(config);
  // T_multi stays 4; speedup rises to 10/4 = 2.5 (paper, Figure 5.3).
  EXPECT_DOUBLE_EQ(result.makespan, 4.0);
  EXPECT_DOUBLE_EQ(t_single.ValueOrDie() / result.makespan, 2.5);
}

TEST(SpeedupModel, Figure54ProcessorVariation) {
  SimConfig config = Figure54Config();
  auto t_single = SingleThreadTime(config, Sigma1());
  ASSERT_TRUE(t_single.ok());
  EXPECT_DOUBLE_EQ(t_single.ValueOrDie(), 9.0);

  MultiThreadResult result = SimulateMultiThread(config);
  // With Np=3, P4 waits for a processor: T_multi = 6; speedup 9/6 = 1.5
  // (paper, Figure 5.4).
  EXPECT_DOUBLE_EQ(result.makespan, 6.0);
  EXPECT_DOUBLE_EQ(t_single.ValueOrDie() / result.makespan, 1.5);
}

TEST(SpeedupModel, Example51UniprocessorInequality) {
  // Example 5.1: multi-thread on a uniprocessor is never faster than
  // single-thread — T_multi_uni = Σ T(committed) + f·Σ T(aborted).
  SimConfig config = Figure51Config();
  MultiThreadResult result = SimulateMultiThread(config);
  auto t_single = SingleThreadTime(config, Sigma1()).ValueOrDie();
  for (double f : {0.0, 0.25, 0.5, 0.99}) {
    EXPECT_GE(UniprocessorMultiThreadTime(config, result, f) + 1e-9,
              t_single)
        << "f=" << f;
  }
  // With f=0 it exactly equals the committed work.
  EXPECT_DOUBLE_EQ(UniprocessorMultiThreadTime(config, result, 0.0), 9.0);
  // With f=0.5, half of P1's T=5 is added.
  EXPECT_DOUBLE_EQ(UniprocessorMultiThreadTime(config, result, 0.5), 11.5);
}

TEST(SpeedupModel, SingleThreadTimeValidatesSequences) {
  SimConfig config = Figure51Config();
  // P1 was never deleted from PA before firing... but σ=p2,p1 is fine?
  // p2 deletes p1, so p2 then p1 is invalid.
  EXPECT_FALSE(SingleThreadTime(config, {1, 0}).ok());
  // Refiring is invalid.
  EXPECT_FALSE(SingleThreadTime(config, {2, 2}).ok());
  // Unknown production index.
  EXPECT_FALSE(SingleThreadTime(config, {9}).ok());
  // Full valid sequence including P1 first.
  auto t = SingleThreadTime(config, {0, 1, 2, 3});
  ASSERT_TRUE(t.ok());
  EXPECT_DOUBLE_EQ(t.ValueOrDie(), 14.0);
}

TEST(SpeedupModel, AddSetsSpawnFollowOnWork) {
  // A commits and adds B; B runs after A on the freed processor.
  SimConfig config;
  config.productions = {
      SimProduction{"a", 2.0, {1}, {}},
      SimProduction{"b", 3.0, {}, {}},
  };
  config.initial = {0};
  config.num_processors = 2;
  MultiThreadResult result = SimulateMultiThread(config);
  EXPECT_DOUBLE_EQ(result.makespan, 5.0);
  EXPECT_EQ(result.commit_order, (std::vector<size_t>{0, 1}));
  EXPECT_EQ(result.aborts, 0u);
}

TEST(SpeedupModel, QueuedVictimIsRemovedNotAborted) {
  // Np=1: P2 (T=1) runs first (queue order), commits, deletes P1 while
  // P1 is still queued — no wasted work.
  SimConfig config;
  config.productions = {
      SimProduction{"p1", 5.0, {}, {}},
      SimProduction{"p2", 1.0, {}, {0}},
  };
  config.initial = {1, 0};  // p2 first in queue
  config.num_processors = 1;
  MultiThreadResult result = SimulateMultiThread(config);
  EXPECT_DOUBLE_EQ(result.makespan, 1.0);
  EXPECT_EQ(result.aborts, 0u);  // removed from queue, not aborted
  EXPECT_DOUBLE_EQ(result.wasted_time, 0.0);
}

TEST(SpeedupModel, MoreProcessorsNeverSlower) {
  SimConfig config = Figure51Config();
  double previous = 1e9;
  for (size_t np = 1; np <= 5; ++np) {
    config.num_processors = np;
    double makespan = SimulateMultiThread(config).makespan;
    EXPECT_LE(makespan, previous + 1e-9) << "np=" << np;
    previous = makespan;
  }
  // Saturation: Np >= |PA| = 4 stops helping (paper §5.3).
  config.num_processors = 4;
  double at4 = SimulateMultiThread(config).makespan;
  config.num_processors = 5;
  EXPECT_DOUBLE_EQ(SimulateMultiThread(config).makespan, at4);
}

TEST(SpeedupModel, GanttRenders) {
  SimConfig config = Figure51Config();
  MultiThreadResult result = SimulateMultiThread(config);
  std::string gantt = result.ToGantt(config);
  EXPECT_NE(gantt.find("cpu0"), std::string::npos);
  EXPECT_NE(gantt.find("cpu3"), std::string::npos);
  EXPECT_NE(gantt.find("x"), std::string::npos);  // aborted work marked
}

}  // namespace
}  // namespace sim
}  // namespace dbps
