// End-to-end smoke test: DSL program -> single-thread run -> parallel run
// -> replay validation.

#include <gtest/gtest.h>

#include "dbps.h"

namespace dbps {
namespace {

constexpr const char* kCounterProgram = R"(
(relation counter (name symbol) (value int) (limit int))

(rule bump
  (counter ^name <n> ^value <v> ^limit { > <v> })
  -->
  (modify 1 ^value (+ <v> 1)))

(make counter ^name a ^value 0 ^limit 5)
(make counter ^name b ^value 2 ^limit 4)
)";

TEST(Smoke, SingleThreadCounter) {
  WorkingMemory wm;
  auto rules_or = LoadProgram(kCounterProgram, &wm);
  ASSERT_TRUE(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();

  SingleThreadEngine engine(&wm, rules);
  auto result_or = engine.Run();
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult& result = result_or.ValueOrDie();

  // Counter a bumps 0->5 (5 firings), b bumps 2->4 (2 firings).
  EXPECT_EQ(result.stats.firings, 7u);
  EXPECT_FALSE(result.stats.hit_max_firings);

  // Final values.
  auto wmes = wm.Scan(Sym("counter"));
  ASSERT_EQ(wmes.size(), 2u);
  for (const auto& wme : wmes) {
    EXPECT_EQ(wme->value(1), wme->value(2)) << wme->ToString();
  }
}

TEST(Smoke, ParallelMatchesSingleThreadAndValidates) {
  WorkingMemory setup;
  auto rules_or = LoadProgram(kCounterProgram, &setup);
  ASSERT_TRUE(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();

  auto wm = setup.Clone();
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = LockProtocol::kRcRaWa;
  ParallelEngine engine(wm.get(), rules, options);
  auto result_or = engine.Run();
  ASSERT_TRUE(result_or.ok()) << result_or.status();
  const RunResult& result = result_or.ValueOrDie();

  EXPECT_EQ(result.stats.firings, 7u);

  // Semantic consistency (Definition 3.2): the commit log must replay as
  // a single-thread sequence.
  auto replay_wm = setup.Clone();
  Status valid = ValidateReplay(replay_wm.get(), rules, result.log);
  EXPECT_TRUE(valid.ok()) << valid;
}

}  // namespace
}  // namespace dbps
