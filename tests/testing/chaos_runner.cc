#include "testing/chaos_runner.h"

#include <atomic>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include "engine/busy_work.h"
#include "testing/workloads.h"
#include "util/string_util.h"

namespace dbps {
namespace testing {
namespace {

// The multi-user chaos program: clients file requests, rules triage and
// resolve them, and every third client transaction takes a repeatable
// read over `resolved` — so rule commits victimize clients under kRcRaWa
// and block behind them under kTwoPhase (same contention shape as the
// multi-user property test, now with faults layered on top).
constexpr const char* kChaosProgram = R"(
(relation request (id int) (state symbol))
(relation resolved (id int))

(rule triage :cost 30
  (request ^id <i> ^state new)
  -->
  (modify 1 ^state triaged))

(rule resolve :cost 30
  (request ^id <i> ^state triaged)
  -->
  (remove 1)
  (make resolved ^id <i>))
)";

/// Disarms every failpoint on scope exit, no matter how the trial ends.
struct FailpointDisarm {
  ~FailpointDisarm() { FailpointRegistry::Instance().DisableAll(); }
};

ParallelEngineOptions EngineOptionsFor(const ChaosOptions& options) {
  ParallelEngineOptions eo;
  eo.base.seed = options.seed;
  eo.num_workers = options.num_workers;
  eo.protocol = options.protocol;
  eo.abort_policy = options.abort_policy;
  eo.deadlock_policy = options.deadlock_policy;
  eo.commit_batch_limit = options.commit_batch_limit;
  return eo;
}

/// The post-run safety checks shared by both workloads.
Status CheckRun(const StatusOr<RunResult>& result_or, WorkingMemory* wm,
                WorkingMemory* pristine, const RuleSetPtr& rules,
                size_t live_transactions) {
  if (!result_or.ok()) {
    return Status::Internal("run failed: " + result_or.status().ToString());
  }
  const RunResult& result = result_or.ValueOrDie();
  if (live_transactions != 0) {
    return Status::Internal(
        StringPrintf("leaked %zu live transactions", live_transactions));
  }
  Status replay = ValidateReplay(pristine, rules, result.log);
  if (!replay.ok()) {
    return Status::Internal("replay validation failed: " +
                            replay.ToString());
  }
  if (pristine->TotalCount() != wm->TotalCount()) {
    return Status::Internal(StringPrintf(
        "replayed database diverged: replay has %zu WMEs, run has %zu",
        pristine->TotalCount(), wm->TotalCount()));
  }
  return Status::OK();
}

ChaosReport RunRulesOnlyTrial(const ChaosOptions& options) {
  ChaosReport report;
  RuleSetPtr rules;
  auto wm = MakeLogisticsWm(/*boxes=*/12, /*robots=*/4, /*sites=*/4, &rules);
  auto pristine = wm->Clone();

  FailpointDisarm disarm;
  ApplyChaosProfile(options.fail_rate, options.seed);

  ParallelEngine engine(wm.get(), rules, EngineOptionsFor(options));
  auto result_or = engine.Run();
  FailpointRegistry::Instance().DisableAll();

  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, wm.get(), pristine.get(), rules,
                            report.live_transactions);
  return report;
}

ChaosReport RunMultiUserTrial(const ChaosOptions& options) {
  ChaosReport report;
  WorkingMemory wm;
  auto rules_or = LoadProgram(kChaosProgram, &wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();
  auto pristine = wm.Clone();

  SessionManager manager(&wm);
  ParallelEngineOptions eo = EngineOptionsFor(options);
  eo.external_source = &manager;
  ParallelEngine engine(&wm, rules, eo);
  manager.BindEngine(&engine);

  FailpointDisarm disarm;
  ApplyChaosProfile(options.fail_rate, options.seed);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> gave_up{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < options.client_sessions; ++c) {
    clients.emplace_back([&, c] {
      // Connect can be rejected by the injected admission failpoint;
      // retry like a real client would.
      SessionPtr session;
      for (int attempt = 0; attempt < 64 && session == nullptr; ++attempt) {
        auto session_or = manager.Connect("chaos-" + std::to_string(c));
        if (session_or.ok()) {
          session = session_or.ValueOrDie();
        } else {
          SleepMicros(200);
        }
      }
      if (session == nullptr) {
        gave_up.fetch_add(options.txns_per_session);
        return;
      }
      for (uint64_t i = 0; i < options.txns_per_session; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          if (i % 3 == 0) {
            auto rows_or = s.Read("resolved");
            if (!rows_or.ok()) return rows_or.status();
          }
          Delta delta;
          delta.Create(Sym("request"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i)),
                        Value::Symbol("new")});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          gave_up.fetch_add(1);
        }
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  // Disarm before validation so the replay cannot trip engine/lock sites.
  FailpointRegistry::Instance().DisableAll();

  report.committed_client_txns = committed.load();
  report.client_give_ups = gave_up.load();
  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, &wm, pristine.get(), rules,
                            report.live_transactions);
  return report;
}

}  // namespace

std::string ChaosReport::ToString() const {
  return StringPrintf(
      "verdict=%s committed=%llu give_ups=%llu live_txns=%zu [%s]",
      verdict.ToString().c_str(),
      (unsigned long long)committed_client_txns,
      (unsigned long long)client_give_ups, live_transactions,
      stats.ToString().c_str());
}

ChaosReport ChaosRunner::RunTrial(const ChaosOptions& options) {
  switch (options.workload) {
    case ChaosWorkload::kRulesOnly:
      return RunRulesOnlyTrial(options);
    case ChaosWorkload::kMultiUser:
      return RunMultiUserTrial(options);
  }
  ChaosReport report;
  report.verdict = Status::InvalidArgument("unknown chaos workload");
  return report;
}

}  // namespace testing
}  // namespace dbps
