#include "testing/chaos_runner.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "engine/busy_work.h"
#include "net/client.h"
#include "net/net_server.h"
#include "testing/workloads.h"
#include "util/string_util.h"

namespace dbps {
namespace testing {
namespace {

// The multi-user chaos program: clients file requests, rules triage and
// resolve them, and every third client transaction takes a repeatable
// read over `resolved` — so rule commits victimize clients under kRcRaWa
// and block behind them under kTwoPhase (same contention shape as the
// multi-user property test, now with faults layered on top).
constexpr const char* kChaosProgram = R"(
(relation request (id int) (state symbol))
(relation resolved (id int))

(rule triage :cost 30
  (request ^id <i> ^state new)
  -->
  (modify 1 ^state triaged))

(rule resolve :cost 30
  (request ^id <i> ^state triaged)
  -->
  (remove 1)
  (make resolved ^id <i>))
)";

/// Disarms every failpoint on scope exit, no matter how the trial ends.
struct FailpointDisarm {
  ~FailpointDisarm() { FailpointRegistry::Instance().DisableAll(); }
};

ParallelEngineOptions EngineOptionsFor(const ChaosOptions& options) {
  ParallelEngineOptions eo;
  eo.base.seed = options.seed;
  eo.num_workers = options.num_workers;
  eo.protocol = options.protocol;
  eo.abort_policy = options.abort_policy;
  eo.deadlock_policy = options.deadlock_policy;
  eo.commit_batch_limit = options.commit_batch_limit;
  eo.num_match_partitions = options.match_partitions;
  eo.match_workers = options.match_workers;
  eo.match_shadow_check = options.match_shadow_check;
  eo.match_split = options.match_split;
  eo.match_split_ways = options.match_split_ways;
  eo.match_split_streak = options.match_split_streak;
  eo.match_split_share = options.match_split_share;
  eo.match_rehome = options.match_rehome;
  eo.match_rehome_streak = options.match_rehome_streak;
  eo.match_pipeline = options.match_pipeline;
  eo.adaptive_batch_limit = options.adaptive_batch_limit;
  eo.audit_every = options.audit_every;
  return eo;
}

/// The post-run safety checks shared by every workload. `audit_out`
/// (optional) receives the consistency audit of the commit log.
Status CheckRun(const StatusOr<RunResult>& result_or, WorkingMemory* wm,
                WorkingMemory* pristine, const RuleSetPtr& rules,
                size_t live_transactions, AuditReport* audit_out = nullptr) {
  if (!result_or.ok()) {
    return Status::Internal("run failed: " + result_or.status().ToString());
  }
  const RunResult& result = result_or.ValueOrDie();
  if (live_transactions != 0) {
    return Status::Internal(
        StringPrintf("leaked %zu live transactions", live_transactions));
  }
  Status replay = ValidateReplay(pristine, rules, result.log);
  if (!replay.ok()) {
    return Status::Internal("replay validation failed: " +
                            replay.ToString());
  }
  if (pristine->TotalCount() != wm->TotalCount()) {
    return Status::Internal(StringPrintf(
        "replayed database diverged: replay has %zu WMEs, run has %zu",
        pristine->TotalCount(), wm->TotalCount()));
  }
  // The independent oracle: re-derive serializability, Rc/Wa semantics,
  // and the victim ledger from the log alone (none of the engine's apply
  // code). ValidateReplay and the audit share no logic, so agreement
  // here is two independent proofs.
  ConsistencyAuditor auditor;
  for (const FiringRecord& record : result.log) {
    auditor.AddCommit(record.seq, record.delta, record.audit);
  }
  AuditReport audit = auditor.Finish();
  if (audit_out != nullptr) *audit_out = audit;
  if (!audit.clean()) {
    return Status::Internal("consistency audit failed: " + audit.ToString());
  }
  return Status::OK();
}

ChaosReport RunRulesOnlyTrial(const ChaosOptions& options) {
  ChaosReport report;
  RuleSetPtr rules;
  auto wm = MakeLogisticsWm(/*boxes=*/12, /*robots=*/4, /*sites=*/4, &rules);
  auto pristine = wm->Clone();

  FailpointDisarm disarm;
  ApplyChaosProfile(options.fail_rate, options.seed);

  ParallelEngine engine(wm.get(), rules, EngineOptionsFor(options));
  auto result_or = engine.Run();
  FailpointRegistry::Instance().DisableAll();

  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, wm.get(), pristine.get(), rules,
                            report.live_transactions, &report.audit);
  return report;
}

ChaosReport RunMultiUserTrial(const ChaosOptions& options) {
  ChaosReport report;
  WorkingMemory wm;
  auto rules_or = LoadProgram(kChaosProgram, &wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();
  auto pristine = wm.Clone();

  SessionManager manager(&wm);
  ParallelEngineOptions eo = EngineOptionsFor(options);
  eo.external_source = &manager;
  ParallelEngine engine(&wm, rules, eo);
  manager.BindEngine(&engine);

  FailpointDisarm disarm;
  ApplyChaosProfile(options.fail_rate, options.seed);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> gave_up{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < options.client_sessions; ++c) {
    clients.emplace_back([&, c] {
      // Connect can be rejected by the injected admission failpoint;
      // retry like a real client would.
      SessionPtr session;
      for (int attempt = 0; attempt < 64 && session == nullptr; ++attempt) {
        auto session_or = manager.Connect("chaos-" + std::to_string(c));
        if (session_or.ok()) {
          session = session_or.ValueOrDie();
        } else {
          SleepMicros(200);
        }
      }
      if (session == nullptr) {
        gave_up.fetch_add(options.txns_per_session);
        return;
      }
      for (uint64_t i = 0; i < options.txns_per_session; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          if (i % 3 == 0) {
            auto rows_or = s.Read("resolved");
            if (!rows_or.ok()) return rows_or.status();
          }
          Delta delta;
          delta.Create(Sym("request"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i)),
                        Value::Symbol("new")});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          gave_up.fetch_add(1);
        }
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  // Disarm before validation so the replay cannot trip engine/lock sites.
  FailpointRegistry::Instance().DisableAll();

  report.committed_client_txns = committed.load();
  report.client_give_ups = gave_up.load();
  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, &wm, pristine.get(), rules,
                            report.live_transactions, &report.audit);
  return report;
}

ChaosReport RunNetworkTrial(const ChaosOptions& options) {
  ChaosReport report;
  WorkingMemory wm;
  auto rules_or = LoadProgram(kChaosProgram, &wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();
  auto pristine = wm.Clone();

  // Durable group-commit journal: commit acks over the wire are
  // fsync-acknowledged, so the chaos faults also stress the ack path.
  JournalFeed feed;
  DurabilityOptions durability;
  durability.group_commit = true;
  durability.flush_deadline = options.flush_deadline;
  DBPS_CHECK_OK(feed.EnableDurability(durability));

  ServerOptions server_options;
  server_options.durable_feed = &feed;
  SessionManager manager(&wm, server_options);
  ParallelEngineOptions eo = EngineOptionsFor(options);
  eo.external_source = &manager;
  eo.base.observer = feed.MakeObserver();
  ParallelEngine engine(&wm, rules, eo);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  net::NetServerOptions net_options;
  net_options.num_loops = 2;
  net_options.num_dispatchers = 4;
  net::NetServer net(&manager, net_options);
  DBPS_CHECK_OK(net.Start());
  const uint16_t port = net.port();

  FailpointDisarm disarm;
  ApplyNetworkChaosProfile(options.fail_rate, options.seed);

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> gave_up{0};
  std::atomic<uint64_t> unknown{0};
  std::atomic<uint64_t> reconnects{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < options.client_sessions; ++c) {
    clients.emplace_back([&, c] {
      const std::string name = "net-chaos-" + std::to_string(c);
      std::unique_ptr<net::DbpsClient> client;
      // (Re)connects through injected accept drops and Busy rejections.
      auto ensure_connected = [&]() -> bool {
        if (client != nullptr) return true;
        // Short receive timeout: under chaos a response can legitimately
        // never arrive (dropped connection); fail fast and reconnect
        // rather than park the trial on the default 30s timeout.
        net::ClientOptions client_options;
        client_options.recv_timeout = std::chrono::milliseconds(2000);
        for (int attempt = 0; attempt < 64; ++attempt) {
          auto client_or =
              net::DbpsClient::Connect("127.0.0.1", port, name, client_options);
          if (client_or.ok()) {
            client = std::move(client_or).ValueOrDie();
            return true;
          }
          SleepMicros(300);
        }
        return false;
      };
      for (uint64_t i = 0; i < options.txns_per_session; ++i) {
        bool done = false;
        for (int attempt = 0; attempt < 32 && !done; ++attempt) {
          if (!ensure_connected()) break;
          Status st = client->Begin();
          if (st.ok()) {
            auto line_or = DeltaToJournalLine([&] {
              Delta delta;
              delta.Create(Sym("request"),
                           {Value::Int(static_cast<int64_t>(c * 1000 + i)),
                            Value::Symbol("new")});
              return delta;
            }());
            DBPS_CHECK(line_or.ok());
            st = client->WriteLine(line_or.ValueOrDie());
            if (st.ok()) {
              auto seq_or = client->Commit();
              if (seq_or.ok()) {
                committed.fetch_add(1);
                done = true;
                continue;
              }
              st = seq_or.status();
              if (st.IsUnavailable()) {
                // Connection died carrying the commit verdict: the
                // outcome is unknown; do NOT re-run this transaction
                // (it may have committed — replay decides the truth).
                unknown.fetch_add(1);
                done = true;
              }
            }
          }
          if (!done && st.IsUnavailable()) {
            // Dead connection: drop it and reconnect.
            client.reset();
            reconnects.fetch_add(1);
          }
          if (!done) SleepMicros(300);
        }
        if (!done) gave_up.fetch_add(1);
      }
      if (client != nullptr) (void)client->Goodbye();
    });
  }
  for (auto& t : clients) t.join();
  net.Stop();
  manager.Close();
  serve.join();
  FailpointRegistry::Instance().DisableAll();

  report.committed_client_txns = committed.load();
  report.client_give_ups = gave_up.load();
  report.unknown_outcomes = unknown.load();
  report.reconnects = reconnects.load();
  report.deadline_flushes = feed.durability().deadline_flushes;
  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, &wm, pristine.get(), rules,
                            report.live_transactions, &report.audit);
  // The durable journal must never over-promise: everything below the
  // durable high-water actually reached the feed.
  if (report.verdict.ok() && feed.durable_seq() > feed.size()) {
    report.verdict = Status::Internal(StringPrintf(
        "durable_seq %llu exceeds journal size %zu",
        (unsigned long long)feed.durable_seq(), feed.size()));
  }
  return report;
}

ChaosReport RunCrashRecoverTrial(const ChaosOptions& options) {
  ChaosReport report;
  if (options.journal_path.empty()) {
    report.verdict = Status::InvalidArgument(
        "kCrashRecover requires ChaosOptions::journal_path");
    return report;
  }
  WorkingMemory wm;
  auto rules_or = LoadProgram(kChaosProgram, &wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();
  auto pristine = wm.Clone();

  // File-backed durable journal: a fresh WAL per trial, optionally with
  // group commit and auto-checkpoints, per the seeded matrix.
  JournalFeed feed;
  DurabilityOptions durability;
  durability.path = options.journal_path;
  durability.open_mode = JournalOpenMode::kTruncate;
  durability.group_commit = options.group_commit;
  durability.flush_deadline = options.flush_deadline;
  durability.checkpoint_every = options.checkpoint_every;
  Status enabled = feed.EnableDurability(durability);
  if (enabled.ok()) enabled = feed.EnableCheckpoints(&wm);
  if (!enabled.ok()) {
    report.verdict = enabled;
    return report;
  }

  ServerOptions server_options;
  server_options.durable_feed = &feed;
  SessionManager manager(&wm, server_options);
  ParallelEngineOptions eo = EngineOptionsFor(options);
  eo.external_source = &manager;
  eo.base.observer = feed.MakeObserver();
  ParallelEngine engine(&wm, rules, eo);
  manager.BindEngine(&engine);

  // Arm exactly ONE crash site, both choices derived from the seed: which
  // failure shape (all frames written vs torn mid-frame) and how many
  // successful syncs happen first. one_in=1 makes the armed site fire
  // deterministically once the skip count is spent.
  FailpointDisarm disarm;
  FailpointRegistry::Instance().SetSeed(options.seed);
  const std::vector<std::string>& sites = CrashChaosSites();
  const std::string site = sites[options.seed % sites.size()];
  const uint64_t skip =
      1 + options.seed % (options.group_commit ? 6 : 16);
  FailpointRegistry::Instance().Configure(
      site, {.one_in = 1, .skip = skip, .max_fires = 1});

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  // Clients record every ACKED commit: Session::Commit only returns OK
  // after the commit's journal frame is fsync-durable, so (id, seq) here
  // is exactly the set recovery must preserve.
  std::mutex mu;
  std::vector<std::pair<int64_t, uint64_t>> acked;
  std::atomic<uint64_t> gave_up{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < options.client_sessions; ++c) {
    clients.emplace_back([&, c] {
      auto session_or = manager.Connect("crash-" + std::to_string(c));
      if (!session_or.ok()) {
        gave_up.fetch_add(options.txns_per_session);
        return;
      }
      SessionPtr session = session_or.ValueOrDie();
      for (uint64_t i = 0; i < options.txns_per_session; ++i) {
        const int64_t id = static_cast<int64_t>(c * 1000 + i);
        uint64_t seq = 0;
        Status st = session->Perform([&](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          Delta delta;
          delta.Create(Sym("request"),
                       {Value::Int(id), Value::Symbol("new")});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          auto seq_or = s.Commit();
          if (seq_or.ok()) seq = seq_or.ValueOrDie();
          return seq_or.status();
        });
        if (st.ok()) {
          std::lock_guard<std::mutex> guard(mu);
          acked.emplace_back(id, seq);
        } else {
          // After the injected crash every commit fails its durable
          // wait — bounded give-up is the correct client behavior.
          gave_up.fetch_add(1);
        }
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  FailpointRegistry::Instance().DisableAll();

  report.committed_client_txns = acked.size();
  report.acked_commits = acked.size();
  report.client_give_ups = gave_up.load();
  report.injected_crashes = feed.durability().injected_crashes;
  report.deadline_flushes = feed.durability().deadline_flushes;
  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, &wm, pristine.get(), rules,
                            report.live_transactions, &report.audit);
  if (!report.verdict.ok()) return report;

  // --- The crash happened (or the workload outran the crash point);
  // either way, recover the on-disk journal into a fresh program WM. ---
  WorkingMemory recovered;
  DBPS_CHECK(LoadProgram(kChaosProgram, &recovered).ok());
  RecoveryManager recovery(options.journal_path);
  auto recover_or = recovery.Recover(&recovered);
  if (!recover_or.ok()) {
    report.verdict = Status::Internal("recovery failed: " +
                                      recover_or.status().ToString());
    return report;
  }
  report.recovery = recover_or.ValueOrDie();

  // (b) Nothing durable was lost: recovery reaches at least the feed's
  // frozen durable high-water.
  if (report.recovery.next_seq < feed.durable_seq()) {
    report.verdict = Status::Internal(StringPrintf(
        "durable suffix lost: recovery stops at seq %llu, durable "
        "high-water is %llu",
        (unsigned long long)report.recovery.next_seq,
        (unsigned long long)feed.durable_seq()));
    return report;
  }

  // (a) Every ACKED commit survived: its seq is inside the recovered
  // prefix AND its tuple is present (as `request`, or as `resolved` if a
  // logged rule firing already consumed it).
  for (const auto& entry : acked) {
    const int64_t id = entry.first;
    const uint64_t seq = entry.second;
    if (seq >= report.recovery.next_seq) {
      report.verdict = Status::Internal(StringPrintf(
          "acked commit seq %llu lost: recovery stops at seq %llu",
          (unsigned long long)seq,
          (unsigned long long)report.recovery.next_seq));
      return report;
    }
    const bool survived =
        !recovered.Lookup(Sym("request"), 0, Value::Int(id)).empty() ||
        !recovered.Lookup(Sym("resolved"), 0, Value::Int(id)).empty();
    if (!survived) {
      report.verdict = Status::Internal(StringPrintf(
          "acked request id %lld (seq %llu) missing from recovered state",
          (long long)id, (unsigned long long)seq));
      return report;
    }
  }

  // (c) The recovered (truncated) journal scans clean end to end.
  auto validate_or = recovery.Validate();
  if (!validate_or.ok()) {
    report.verdict = Status::Internal("post-recovery validate failed: " +
                                      validate_or.status().ToString());
    return report;
  }
  const RecoveryStats& revalidated = validate_or.ValueOrDie();
  if (revalidated.tail != WalTail::kClean ||
      revalidated.bytes_truncated != 0) {
    report.verdict = Status::Internal(
        "recovered journal does not scan clean: " + revalidated.ToString());
    return report;
  }

  // (d) Checkpoint-based recovery equals an independent full replay of
  // the same log's delta payloads onto a fresh program WM — the
  // checkpoint is a pure accelerator, never a semantic shortcut.
  auto it_or = WalIterator::OpenFile(options.journal_path);
  if (!it_or.ok()) {
    report.verdict = it_or.status();
    return report;
  }
  WalIterator it = std::move(it_or).ValueOrDie();
  std::string text;
  WalRecord record;
  while (it.Next(&record)) {
    if (record.type != WalRecordType::kDelta) continue;
    text += record.payload;
    text += '\n';
  }
  WorkingMemory replayed;
  DBPS_CHECK(LoadProgram(kChaosProgram, &replayed).ok());
  Status replay = ReplayJournal(text, &replayed);
  if (!replay.ok()) {
    report.verdict =
        Status::Internal("recovered journal does not replay: " +
                         replay.ToString());
    return report;
  }
  if (CanonicalWmDump(recovered) != CanonicalWmDump(replayed)) {
    report.verdict = Status::Internal(
        "checkpoint recovery diverged from full journal replay");
    return report;
  }

  // (e) The recovered WAL passes the offline consistency audit — the
  // crash must not leave a log that replays but encodes an impossible
  // history.
  auto audit_or = ConsistencyAuditor::AuditWalFile(options.journal_path);
  if (!audit_or.ok()) {
    report.verdict = Status::Internal("post-recovery audit failed to run: " +
                                      audit_or.status().ToString());
    return report;
  }
  report.audit = std::move(audit_or).ValueOrDie();
  if (!report.audit.clean()) {
    report.verdict = Status::Internal("post-recovery audit failed: " +
                                      report.audit.ToString());
    return report;
  }
  return report;
}

// The adversarial OLTP schema shared by the Zipfian and snapshot-scan
// families. The guard rule can never fire (ids are non-negative): the
// matcher stays engaged on every commit without perturbing balances, so
// conservation stays checkable.
constexpr const char* kAccountProgram = R"(
(relation account (id int) (balance int))
(relation receipt (reader int) (total int))

(rule account-guard
  (account ^id { < 0 })
  -->
  (remove 1))
)";

/// Seeds `keys` zero-balance accounts (pre-log tuples: created before
/// the engine, so the audit exercises its pre-log registration path).
void SeedAccounts(WorkingMemory* wm, size_t keys) {
  for (size_t k = 0; k < keys; ++k) {
    DBPS_CHECK(wm->Insert("account", {Value::Int(static_cast<int64_t>(k)),
                                      Value::Int(0)})
                   .ok());
  }
}

int64_t TotalBalance(const WorkingMemory& wm) {
  int64_t total = 0;
  for (const WmePtr& row : wm.Scan(Sym("account"))) {
    total += row->value(1).AsInt();
  }
  return total;
}

ChaosReport RunZipfianTrial(const ChaosOptions& options) {
  ChaosReport report;
  WorkingMemory wm;
  auto rules_or = LoadProgram(kAccountProgram, &wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();
  SeedAccounts(&wm, options.zipfian_keys);
  auto pristine = wm.Clone();

  SessionManager manager(&wm);
  ParallelEngineOptions eo = EngineOptionsFor(options);
  eo.external_source = &manager;
  ParallelEngine engine(&wm, rules, eo);
  manager.BindEngine(&engine);

  FailpointDisarm disarm;
  ApplyChaosProfile(options.fail_rate, options.seed);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  const ZipfianGenerator zipf(options.zipfian_keys, options.zipfian_theta);
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> gave_up{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < options.client_sessions; ++c) {
    clients.emplace_back([&, c] {
      Random rng(options.seed * 1000 + c);
      SessionPtr session;
      for (int attempt = 0; attempt < 64 && session == nullptr; ++attempt) {
        auto session_or = manager.Connect("zipf-" + std::to_string(c));
        if (session_or.ok()) {
          session = session_or.ValueOrDie();
        } else {
          SleepMicros(200);
        }
      }
      if (session == nullptr) {
        gave_up.fetch_add(options.txns_per_session);
        return;
      }
      for (uint64_t i = 0; i < options.txns_per_session; ++i) {
        // The Zipfian draw happens OUTSIDE the retry loop: a victimized
        // transaction retries the same hot key, which is exactly how a
        // real skewed workload pile-up behaves.
        const int64_t target = static_cast<int64_t>(zipf.Next(&rng));
        Status st = session->Perform([&](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          DBPS_ASSIGN_OR_RETURN(std::vector<WmePtr> rows, s.Read("account"));
          const Wme* hit = nullptr;
          for (const WmePtr& row : rows) {
            if (row->value(0).AsInt() == target) {
              hit = row.get();
              break;
            }
          }
          if (hit == nullptr) {
            return Status::Internal("account missing: " +
                                    std::to_string(target));
          }
          Delta delta;
          delta.Modify(hit->id(),
                       {{1, Value::Int(hit->value(1).AsInt() + 1)}});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          gave_up.fetch_add(1);
        }
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  FailpointRegistry::Instance().DisableAll();

  report.committed_client_txns = committed.load();
  report.client_give_ups = gave_up.load();
  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, &wm, pristine.get(), rules,
                            report.live_transactions, &report.audit);
  // Conservation: every committed increment is worth exactly +1, so a
  // lost update (the classic hot-key failure) shows up as a shortfall.
  if (report.verdict.ok() &&
      TotalBalance(wm) != static_cast<int64_t>(committed.load())) {
    report.verdict = Status::Internal(StringPrintf(
        "lost update: %lld total balance after %llu committed increments",
        (long long)TotalBalance(wm), (unsigned long long)committed.load()));
  }
  return report;
}

ChaosReport RunSnapshotScanTrial(const ChaosOptions& options) {
  ChaosReport report;
  WorkingMemory wm;
  auto rules_or = LoadProgram(kAccountProgram, &wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();
  SeedAccounts(&wm, options.zipfian_keys);
  auto pristine = wm.Clone();

  SessionManager manager(&wm);
  ParallelEngineOptions eo = EngineOptionsFor(options);
  eo.external_source = &manager;
  ParallelEngine engine(&wm, rules, eo);
  manager.BindEngine(&engine);

  FailpointDisarm disarm;
  ApplyChaosProfile(options.fail_rate, options.seed);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> gave_up{0};
  std::mutex verdict_mu;
  Status reader_verdict;  // first snapshot-stability violation, if any

  std::vector<std::thread> writers;
  for (size_t c = 0; c < options.client_sessions; ++c) {
    writers.emplace_back([&, c] {
      Random rng(options.seed * 2000 + c);
      auto session_or = manager.Connect("writer-" + std::to_string(c));
      if (!session_or.ok()) {
        gave_up.fetch_add(options.txns_per_session);
        return;
      }
      SessionPtr session = session_or.ValueOrDie();
      for (uint64_t i = 0; i < options.txns_per_session; ++i) {
        const int64_t target =
            static_cast<int64_t>(rng.Uniform(options.zipfian_keys));
        Status st = session->Perform([&](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          DBPS_ASSIGN_OR_RETURN(std::vector<WmePtr> rows, s.Read("account"));
          for (const WmePtr& row : rows) {
            if (row->value(0).AsInt() != target) continue;
            Delta delta;
            delta.Modify(row->id(),
                         {{1, Value::Int(row->value(1).AsInt() + 1)}});
            DBPS_RETURN_NOT_OK(s.Write(delta));
            break;
          }
          return s.Commit().status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          gave_up.fetch_add(1);
        }
      }
      session->Close();
    });
  }

  // Long-running snapshot readers: each transaction pins a CSN at Begin,
  // re-reads the relation across many commit batches (writers are
  // committing the whole time), and must observe the IDENTICAL version
  // set every time — then publishes its snapshot total so the evidence
  // lands in the journal for the auditor.
  std::vector<std::thread> readers;
  for (size_t r = 0; r < options.snapshot_readers; ++r) {
    readers.emplace_back([&, r] {
      SessionOptions session_options;
      session_options.snapshot_reads = true;
      auto session_or = manager.Connect("snap-" + std::to_string(r),
                                        session_options);
      if (!session_or.ok()) return;
      SessionPtr session = session_or.ValueOrDie();
      for (int txn = 0; txn < 3; ++txn) {
        Status st = session->Perform([&](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          DBPS_ASSIGN_OR_RETURN(std::vector<WmePtr> first,
                                s.Read("account"));
          std::vector<std::pair<WmeId, TimeTag>> baseline;
          int64_t total = 0;
          for (const WmePtr& row : first) {
            baseline.emplace_back(row->id(), row->tag());
            total += row->value(1).AsInt();
          }
          std::sort(baseline.begin(), baseline.end());
          for (size_t again = 0; again < options.snapshot_rereads; ++again) {
            SleepMicros(300);  // span several commit batches
            DBPS_ASSIGN_OR_RETURN(std::vector<WmePtr> rows,
                                  s.Read("account"));
            std::vector<std::pair<WmeId, TimeTag>> observed;
            for (const WmePtr& row : rows) {
              observed.emplace_back(row->id(), row->tag());
            }
            std::sort(observed.begin(), observed.end());
            if (observed != baseline) {
              return Status::Internal(StringPrintf(
                  "snapshot instability: re-read %zu saw a different "
                  "version set (%zu vs %zu rows)",
                  again, observed.size(), baseline.size()));
            }
          }
          Delta delta;
          delta.Create(Sym("receipt"), {Value::Int(static_cast<int64_t>(r)),
                                        Value::Int(total)});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else if (st.IsInternal()) {
          std::lock_guard<std::mutex> guard(verdict_mu);
          if (reader_verdict.ok()) reader_verdict = st;
          break;
        } else {
          gave_up.fetch_add(1);
        }
      }
      session->Close();
    });
  }
  for (auto& t : writers) t.join();
  for (auto& t : readers) t.join();
  manager.Close();
  serve.join();
  FailpointRegistry::Instance().DisableAll();

  report.committed_client_txns = committed.load();
  report.client_give_ups = gave_up.load();
  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, &wm, pristine.get(), rules,
                            report.live_transactions, &report.audit);
  if (report.verdict.ok() && !reader_verdict.ok()) {
    report.verdict = reader_verdict;
  }
  return report;
}

ChaosReport RunMixedOltpTrial(const ChaosOptions& options) {
  ChaosReport report;
  // Logistics rules + a disjoint OLTP relation in ONE program: rule
  // firings and external client commits share the commit order, the
  // journal, and the audit.
  const std::string program =
      std::string(kLogisticsProgram) +
      "\n(relation ticket (id int) (state symbol))\n";
  WorkingMemory wm;
  auto rules_or = LoadProgram(program, &wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  RuleSetPtr rules = rules_or.ValueOrDie();
  auto site = [&](int i) {
    return Value::Symbol("site" + std::to_string(i % 4));
  };
  for (int i = 0; i < 4; ++i) {
    DBPS_CHECK(wm.Insert("route", {site(i), site(i + 1)}).ok());
  }
  for (int b = 0; b < 12; ++b) {
    DBPS_CHECK(wm.Insert("box", {Value::Int(b + 1), site(b),
                                 Value::Int(1 + b % 5),
                                 Value::Symbol("loose")})
                   .ok());
  }
  for (int r = 0; r < 4; ++r) {
    DBPS_CHECK(wm.Insert("robot",
                         {Value::Symbol("r" + std::to_string(r)), site(r),
                          Value::Int(0), Value::Int(3 + r % 3)})
                   .ok());
  }
  auto pristine = wm.Clone();

  SessionManager manager(&wm);
  ParallelEngineOptions eo = EngineOptionsFor(options);
  eo.external_source = &manager;
  ParallelEngine engine(&wm, rules, eo);
  manager.BindEngine(&engine);

  FailpointDisarm disarm;
  ApplyChaosProfile(options.fail_rate, options.seed);

  StatusOr<RunResult> result_or{Status::Internal("not run")};
  std::thread serve([&] { result_or = engine.Run(); });

  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> gave_up{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < options.client_sessions; ++c) {
    clients.emplace_back([&, c] {
      SessionPtr session;
      for (int attempt = 0; attempt < 64 && session == nullptr; ++attempt) {
        auto session_or = manager.Connect("oltp-" + std::to_string(c));
        if (session_or.ok()) {
          session = session_or.ValueOrDie();
        } else {
          SleepMicros(200);
        }
      }
      if (session == nullptr) {
        gave_up.fetch_add(options.txns_per_session);
        return;
      }
      for (uint64_t i = 0; i < options.txns_per_session; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          if (i % 3 == 0) {
            // Rc-read a RULE-produced relation: client read sets cross
            // the firing/transaction boundary, so rule commits victimize
            // OLTP clients and the audit sees mixed WR edges.
            auto rows_or = s.Read("done");
            if (!rows_or.ok()) return rows_or.status();
          }
          Delta delta;
          delta.Create(Sym("ticket"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i)),
                        Value::Symbol("open")});
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        if (st.ok()) {
          committed.fetch_add(1);
        } else {
          gave_up.fetch_add(1);
        }
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  FailpointRegistry::Instance().DisableAll();

  report.committed_client_txns = committed.load();
  report.client_give_ups = gave_up.load();
  if (result_or.ok()) report.stats = result_or.ValueOrDie().stats;
  report.live_transactions = engine.live_lock_transactions();
  report.verdict = CheckRun(result_or, &wm, pristine.get(), rules,
                            report.live_transactions, &report.audit);
  return report;
}

}  // namespace

size_t ChaosTrialMultiplier() {
  const char* env = std::getenv("DBPS_CHAOS_TRIALS");
  if (env == nullptr || *env == '\0') return 1;
  const long long parsed = std::atoll(env);
  return parsed < 1 ? 1 : static_cast<size_t>(parsed);
}

uint64_t ChaosSeedBase() {
  const char* env = std::getenv("DBPS_CHAOS_SEED");
  if (env == nullptr || *env == '\0') return 0;
  return std::strtoull(env, nullptr, 10);
}

std::string ChaosReport::ToString() const {
  return StringPrintf(
      "verdict=%s committed=%llu give_ups=%llu unknown=%llu "
      "reconnects=%llu live_txns=%zu acked=%llu crashes=%llu "
      "audited=%llu/%llu [%s]",
      verdict.ToString().c_str(),
      (unsigned long long)committed_client_txns,
      (unsigned long long)client_give_ups,
      (unsigned long long)unknown_outcomes,
      (unsigned long long)reconnects, live_transactions,
      (unsigned long long)acked_commits,
      (unsigned long long)injected_crashes,
      (unsigned long long)audit.audited_records,
      (unsigned long long)audit.records, stats.ToString().c_str());
}

ChaosReport ChaosRunner::RunTrial(const ChaosOptions& options) {
  switch (options.workload) {
    case ChaosWorkload::kRulesOnly:
      return RunRulesOnlyTrial(options);
    case ChaosWorkload::kMultiUser:
      return RunMultiUserTrial(options);
    case ChaosWorkload::kNetwork:
      return RunNetworkTrial(options);
    case ChaosWorkload::kCrashRecover:
      return RunCrashRecoverTrial(options);
    case ChaosWorkload::kZipfian:
      return RunZipfianTrial(options);
    case ChaosWorkload::kSnapshotScan:
      return RunSnapshotScanTrial(options);
    case ChaosWorkload::kMixedOltp:
      return RunMixedOltpTrial(options);
  }
  ChaosReport report;
  report.verdict = Status::InvalidArgument("unknown chaos workload");
  return report;
}

}  // namespace testing
}  // namespace dbps
