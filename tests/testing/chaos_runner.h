// ChaosRunner: seeded fault-injection trials for the robustness suite.
//
// One trial = one full engine run (rule-only, or multi-user with client
// sessions attached) executed with the failpoint registry armed from a
// deterministic seed (util/failpoint.h, ApplyChaosProfile). After the run
// the trial asserts the paper's safety property survived the faults:
//
//   (a) the run terminated (we only get here if it did; ctest timeouts
//       catch hangs),
//   (b) the committed log replay-validates single-threaded (Definition
//       3.2, extended to external client records),
//   (c) no transaction leaked — live_lock_transactions() == 0, and
//   (d) the replayed database equals the parallel run's final database.
//
// The verdict is a Status: OK, or the first violated check. Failpoints
// are always disarmed before the trial returns (RAII), so trials cannot
// perturb each other or the rest of the test binary.

#ifndef DBPS_TESTS_TESTING_CHAOS_RUNNER_H_
#define DBPS_TESTS_TESTING_CHAOS_RUNNER_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "dbps.h"

namespace dbps {
namespace testing {

/// Which workload a trial runs under fault injection.
enum class ChaosWorkload : uint8_t {
  kMultiUser,   ///< rule firings + concurrent client sessions (server)
  kRulesOnly,   ///< the logistics program, no external transactions
  /// Clients drive the engine through the socket front-end (src/net/)
  /// with the network chaos profile layered on: dropped connections
  /// mid-commit, injected read errors, one-byte partial writes, delayed
  /// group-commit fsyncs (ApplyNetworkChaosProfile). Clients reconnect
  /// and retry like real ones; the trial then replay-validates.
  kNetwork,
  /// Kill-and-recover: clients commit against a file-backed durable
  /// journal (journal_path) until a seed-chosen crash failpoint
  /// (CrashChaosSites) kills the journal device mid-sync — after all
  /// staged frames landed, or mid-frame (torn tail). The trial then
  /// recovers the journal (server/recovery.h) into a fresh program
  /// working memory and asserts (a) every ACKED client commit survived,
  /// (b) nothing durable was lost (next_seq >= the durable horizon),
  /// (c) the recovered log scans clean, (d) checkpoint-based
  /// recovery equals an independent full replay of the same log, and
  /// (e) the recovered WAL passes the offline consistency audit.
  kCrashRecover,
  /// Hot-key OLTP skew: every client transaction Zipfian-picks an
  /// account (theta 0.99 — roughly half of all draws hit the hottest few
  /// keys), Rc-reads the relation, and increments that account's
  /// balance. Maximum read-write contention on one tuple; the trial
  /// additionally asserts conservation (total balance == committed
  /// increments) on top of replay + audit.
  kZipfian,
  /// Long-running snapshot readers: writer sessions stream increments
  /// while snapshot_reads sessions pin a CSN at Begin and re-Read the
  /// relation across many commit batches, asserting every re-read is
  /// IDENTICAL (same (id, tag) versions); each reader then commits a
  /// summary row so its snapshot evidence lands in the log for the
  /// auditor's visibility-window check.
  kSnapshotScan,
  /// Rule firings and external OLTP in one engine: the logistics program
  /// runs to quiescence while clients hammer a disjoint `ticket`
  /// relation — firing commits and client commits interleave in one
  /// commit order, which the audit checks end to end.
  kMixedOltp,
};

/// DBPS_CHAOS_TRIALS: multiplies every suite's per-combination trial
/// count (default 1; the chaos/audit tiers scale 10-100x for soak runs).
size_t ChaosTrialMultiplier();

/// DBPS_CHAOS_SEED: offsets every trial seed (default 0), so soak runs
/// explore fresh schedules. Failing trials print the effective seed.
uint64_t ChaosSeedBase();

struct ChaosOptions {
  ChaosWorkload workload = ChaosWorkload::kMultiUser;
  LockProtocol protocol = LockProtocol::kRcRaWa;
  AbortPolicy abort_policy = AbortPolicy::kAbort;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
  /// Seeds the failpoint registry AND the engine/workload PRNGs, so a
  /// failing trial reproduces from its printed seed alone.
  uint64_t seed = 1;
  /// Base failpoint probability (see ApplyChaosProfile).
  double fail_rate = 0.05;
  size_t num_workers = 4;
  // Partitioned match phase (0/1 = the serial matcher):
  size_t match_partitions = 0;
  size_t match_workers = 2;
  /// Run the serial shadow matcher alongside the partitioned one and
  /// byte-compare conflict-set dumps after every batch — the differential
  /// gate. Any divergence fails the engine run, which fails the trial.
  bool match_shadow_check = false;
  // Skew adaptation + pipelining (partitioned matcher only). The streak
  // knobs below are deliberately aggressive so short chaos trials
  // actually split and re-home mid-run.
  bool match_split = false;
  size_t match_split_ways = 3;
  size_t match_split_streak = 2;
  double match_split_share = 0.5;
  bool match_rehome = false;
  size_t match_rehome_streak = 6;
  /// Propagate committed batches on the dedicated pipeline thread.
  bool match_pipeline = false;
  /// Self-tune the commit batch limit from observed saturation/stall.
  bool adaptive_batch_limit = false;
  /// Sample audit evidence onto every Nth journal line (1 = every line).
  uint64_t audit_every = 1;
  /// Commit-sequencer fold limit (1 disables batching). The chaos
  /// profile stalls the engine.commit.batch_window site and crashes
  /// members at engine.commit.crash_in_batch, so trials with a limit
  /// above 1 exercise partial-batch failure ordering.
  size_t commit_batch_limit = 8;
  // Multi-user workload shape:
  size_t client_sessions = 3;
  uint64_t txns_per_session = 8;
  // kCrashRecover workload shape:
  /// Journal file for the trial (the trial truncates it at start).
  std::string journal_path;
  /// Fsync once per commit batch instead of once per commit.
  bool group_commit = false;
  /// Adaptive group-commit flush deadline (0 = batch boundaries only);
  /// see DurabilityOptions::flush_deadline. Also applied to the kNetwork
  /// durable feed, where the chaos profile's delayed fsyncs make the
  /// deadline flusher fire.
  std::chrono::milliseconds flush_deadline{0};
  /// Auto-checkpoint cadence (records); 0 = no checkpoints.
  size_t checkpoint_every = 0;
  // kZipfian / kSnapshotScan workload shape:
  /// Distinct hot-key accounts.
  size_t zipfian_keys = 16;
  /// Zipfian skew parameter (in (0, 1); higher = hotter head).
  double zipfian_theta = 0.99;
  /// kSnapshotScan: long-running snapshot reader sessions (writers come
  /// from client_sessions).
  size_t snapshot_readers = 2;
  /// kSnapshotScan: re-reads each snapshot reader performs per txn.
  size_t snapshot_rereads = 6;
};

struct ChaosReport {
  /// OK iff every check passed; otherwise describes the first violation.
  Status verdict = Status::OK();
  EngineStats stats;
  uint64_t committed_client_txns = 0;
  /// Client transactions whose Perform() exhausted its retry budget —
  /// allowed under faults (bounded retry is the point), but reported.
  uint64_t client_give_ups = 0;
  /// kNetwork only: commits whose connection died before the response —
  /// the client never learned the outcome (ambiguous; allowed).
  uint64_t unknown_outcomes = 0;
  /// kNetwork only: times a client had to re-Connect mid-workload.
  uint64_t reconnects = 0;
  size_t live_transactions = 0;
  // kCrashRecover only:
  /// Client commits acknowledged (fsync-durable) before the crash.
  uint64_t acked_commits = 0;
  /// Crashes the journal failpoints injected (0 if the workload finished
  /// before the armed crash point — still a valid recovery trial).
  uint64_t injected_crashes = 0;
  /// Durable-feed trials: groups flushed by the adaptive deadline rather
  /// than a batch boundary (JournalFeed flush_deadline).
  uint64_t deadline_flushes = 0;
  /// What recovery scanned/truncated/replayed.
  RecoveryStats recovery;
  /// The offline consistency audit of the run's commit log (every
  /// workload; kCrashRecover additionally audits the recovered WAL).
  AuditReport audit;

  std::string ToString() const;
};

class ChaosRunner {
 public:
  /// Runs one seeded trial; never leaves failpoints armed.
  static ChaosReport RunTrial(const ChaosOptions& options);
};

}  // namespace testing
}  // namespace dbps

#endif  // DBPS_TESTS_TESTING_CHAOS_RUNNER_H_
