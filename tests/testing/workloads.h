// Shared test workloads: hand-written DSL programs plus a seeded random
// program/working-memory generator for property tests.

#ifndef DBPS_TESTS_TESTING_WORKLOADS_H_
#define DBPS_TESTS_TESTING_WORKLOADS_H_

#include <memory>
#include <string>

#include "lang/compiler.h"
#include "util/random.h"
#include "wm/working_memory.h"

namespace dbps {
namespace testing {

/// The blocks-world-ish program used across matcher/engine tests: joins,
/// a negation, predicates, all three action kinds.
inline constexpr const char* kLogisticsProgram = R"(
(relation box    (id int) (at symbol) (weight int) (status symbol))
(relation robot  (name symbol) (at symbol) (holding int) (capacity int))
(relation route  (from symbol) (to symbol))
(relation done   (box int))

; A free robot picks up a liftable box at its location, unless the
; location is jammed by an already-held box.
(rule pickup :priority 10
  (box ^id <b> ^at <where> ^weight <w> ^status loose)
  (robot ^name <r> ^at <where> ^holding 0 ^capacity { >= <w> })
  -->
  (modify 2 ^holding <b>)
  (modify 1 ^status held))

; A loaded robot moves along a route and drops *its* box.
(rule deliver :priority 5
  (robot ^name <r> ^at <from> ^holding { > 0 } ^holding <held>)
  (route ^from <from> ^to <to>)
  (box ^id <held> ^status held)
  -->
  (modify 1 ^at <to> ^holding 0)
  (modify 3 ^at <to> ^status delivered))

; Account a delivered box exactly once.
(rule account :priority 1
  (box ^id <b> ^status delivered)
  -(done ^box <b>)
  -->
  (make done ^box <b>))
)";

/// Builds the standard logistics initial state: `boxes` loose boxes and
/// `robots` robots spread over `sites` locations, with a ring of routes.
inline std::unique_ptr<WorkingMemory> MakeLogisticsWm(int boxes, int robots,
                                                      int sites,
                                                      RuleSetPtr* rules) {
  auto wm = std::make_unique<WorkingMemory>();
  auto rules_or = LoadProgram(kLogisticsProgram, wm.get());
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  if (rules != nullptr) *rules = rules_or.ValueOrDie();

  auto site = [&](int i) {
    return Value::Symbol("site" + std::to_string(i % sites));
  };
  for (int i = 0; i < sites; ++i) {
    DBPS_CHECK(wm->Insert("route", {site(i), site(i + 1)}).ok());
  }
  for (int b = 0; b < boxes; ++b) {
    DBPS_CHECK(wm->Insert("box", {Value::Int(b + 1), site(b),
                                  Value::Int(1 + b % 5),
                                  Value::Symbol("loose")})
                   .ok());
  }
  for (int r = 0; r < robots; ++r) {
    DBPS_CHECK(wm->Insert("robot",
                          {Value::Symbol("r" + std::to_string(r)), site(r),
                           Value::Int(0), Value::Int(3 + r % 3)})
                   .ok());
  }
  return wm;
}

/// A generator of random-but-terminating rule programs over a small
/// token-passing schema. Every rule consumes a token (removes it) and may
/// mint strictly "smaller" artifacts, so runs always quiesce. Randomness:
/// number of rules, tests, negations, arithmetic, priorities.
class RandomProgramBuilder {
 public:
  explicit RandomProgramBuilder(uint64_t seed) : rng_(seed) {}

  /// Program text: relations + rules + facts.
  std::string Build() {
    std::string out = R"(
(relation token (kind symbol) (value int) (gen int))
(relation slot  (name symbol) (filled int))
(relation mark  (value int))
)";
    const int num_rules = 2 + static_cast<int>(rng_.Uniform(5));
    for (int r = 0; r < num_rules; ++r) out += BuildRule(r);
    const int num_tokens = 3 + static_cast<int>(rng_.Uniform(8));
    for (int t = 0; t < num_tokens; ++t) {
      out += "(make token ^kind " + Kind() + " ^value " +
             std::to_string(rng_.Uniform(6)) + " ^gen 0)\n";
    }
    const int num_slots = 1 + static_cast<int>(rng_.Uniform(3));
    for (int s = 0; s < num_slots; ++s) {
      out += "(make slot ^name s" + std::to_string(s) + " ^filled 0)\n";
    }
    return out;
  }

 private:
  std::string Kind() {
    static const char* kKinds[] = {"red", "green", "blue"};
    return kKinds[rng_.Uniform(3)];
  }

  std::string BuildRule(int index) {
    std::string name = "rule" + std::to_string(index);
    std::string out = "(rule " + name;
    if (rng_.Bernoulli(0.5)) {
      out += " :priority " + std::to_string(rng_.Uniform(5));
    }
    // Sometimes the rule *starts* with a negated CE (constant-valued,
    // since nothing is bound yet) — exercises leading-negation handling.
    if (rng_.Bernoulli(0.25)) {
      out += "\n  -(mark ^value " + std::to_string(rng_.Uniform(6)) + ")";
    }
    // One token CE (always consumed), optionally a slot CE and/or a
    // negated mark CE. Half the rules select the kind with a value
    // disjunction instead of a single constant.
    if (rng_.Bernoulli(0.5)) {
      out += "\n  (token ^kind << " + Kind() + " " + Kind() +
             " >> ^value { >= " + std::to_string(rng_.Uniform(4)) +
             " } ^value <v>)";
    } else {
      out += "\n  (token ^kind " + Kind() + " ^value { >= " +
             std::to_string(rng_.Uniform(4)) + " } ^value <v>)";
    }
    const bool with_slot = rng_.Bernoulli(0.5);
    if (with_slot) {
      out += "\n  (slot ^name <s> ^filled { <= <v> })";
    }
    if (rng_.Bernoulli(0.4)) {
      out += "\n  -(mark ^value <v>)";
    }
    out += "\n  -->\n  (remove 1)";
    if (with_slot && rng_.Bernoulli(0.6)) {
      out += "\n  (modify 2 ^filled (+ <v> 1))";
    }
    if (rng_.Bernoulli(0.5)) {
      out += "\n  (make mark ^value <v>)";
    }
    out += ")\n";
    return out;
  }

  Random rng_;
};

}  // namespace testing
}  // namespace dbps

#endif  // DBPS_TESTS_TESTING_WORKLOADS_H_
