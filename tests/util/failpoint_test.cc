// Unit tests for the failpoint registry: trigger kinds, determinism,
// config-string parsing, the enabled() fast path, and stats.

#include "util/failpoint.h"

#include <chrono>

#include <gtest/gtest.h>

namespace dbps {
namespace {

class FailpointTest : public ::testing::Test {
 protected:
  void SetUp() override { FailpointRegistry::Instance().DisableAll(); }
  void TearDown() override { FailpointRegistry::Instance().DisableAll(); }
};

TEST_F(FailpointTest, DisabledByDefault) {
  auto& reg = FailpointRegistry::Instance();
  EXPECT_FALSE(reg.enabled());
  EXPECT_FALSE(DBPS_FAILPOINT("test.nonexistent"));
  // The fast path short-circuits: an unarmed registry records no hits.
  EXPECT_EQ(reg.GetSiteStats("test.nonexistent").hits, 0u);
}

TEST_F(FailpointTest, OneInFiresDeterministically) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 3;
  reg.Configure("test.one_in", spec);
  EXPECT_TRUE(reg.enabled());

  int fires = 0;
  for (int i = 0; i < 9; ++i) {
    if (DBPS_FAILPOINT("test.one_in")) ++fires;
  }
  EXPECT_EQ(fires, 3);  // hits 3, 6, 9
  auto stats = reg.GetSiteStats("test.one_in");
  EXPECT_EQ(stats.hits, 9u);
  EXPECT_EQ(stats.fires, 3u);
}

TEST_F(FailpointTest, SkipSuppressesEarlyHits) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 1;  // fire on every non-skipped hit
  spec.skip = 5;
  reg.Configure("test.skip", spec);

  int fires = 0;
  for (int i = 0; i < 8; ++i) {
    if (DBPS_FAILPOINT("test.skip")) ++fires;
  }
  EXPECT_EQ(fires, 3);
}

TEST_F(FailpointTest, MaxFiresCapsTotal) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 1;
  spec.max_fires = 2;
  reg.Configure("test.max", spec);

  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (DBPS_FAILPOINT("test.max")) ++fires;
  }
  EXPECT_EQ(fires, 2);
  EXPECT_EQ(reg.GetSiteStats("test.max").hits, 10u);
}

TEST_F(FailpointTest, ProbabilityIsSeedDeterministic) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.probability = 0.5;

  auto run = [&](uint64_t seed) {
    reg.DisableAll();
    reg.SetSeed(seed);
    reg.Configure("test.prob", spec);
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(DBPS_FAILPOINT("test.prob"));
    }
    return outcomes;
  };

  auto a = run(42);
  auto b = run(42);
  auto c = run(43);
  EXPECT_EQ(a, b) << "same seed must give the same fault schedule";
  EXPECT_NE(a, c) << "different seeds should diverge (p=0.5, 64 draws)";
  // Sanity: p=0.5 over 64 draws fires sometimes and not always.
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 0);
  EXPECT_LT(fires, 64);
}

TEST_F(FailpointTest, ProbabilityOneAlwaysFires) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.probability = 1.0;
  reg.Configure("test.always", spec);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(DBPS_FAILPOINT("test.always"));
  }
}

TEST_F(FailpointTest, DelaySleepsWhenFiring) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 1;
  spec.delay = std::chrono::microseconds(5000);
  reg.Configure("test.delay", spec);

  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(DBPS_FAILPOINT("test.delay"));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(elapsed, std::chrono::microseconds(4000));
}

TEST_F(FailpointTest, DisableOneSiteLeavesOthersArmed) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 1;
  reg.Configure("test.a", spec);
  reg.Configure("test.b", spec);
  reg.Disable("test.a");
  EXPECT_TRUE(reg.enabled());
  EXPECT_FALSE(DBPS_FAILPOINT("test.a"));
  EXPECT_TRUE(DBPS_FAILPOINT("test.b"));
  reg.Disable("test.b");
  EXPECT_FALSE(reg.enabled());
}

TEST_F(FailpointTest, DisableAllResetsFireCounter) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 1;
  reg.Configure("test.total", spec);
  for (int i = 0; i < 4; ++i) (void)DBPS_FAILPOINT("test.total");
  EXPECT_EQ(reg.total_fires(), 4u);
  reg.DisableAll();
  EXPECT_EQ(reg.total_fires(), 0u);
  EXPECT_FALSE(reg.enabled());
}

TEST_F(FailpointTest, ConfigureFromStringParsesAllKeys) {
  auto& reg = FailpointRegistry::Instance();
  ASSERT_TRUE(reg.ConfigureFromString(
                     "test.x=p:0.25,delay:300;test.y=1in:4,skip:2,max:7")
                  .ok());
  EXPECT_TRUE(reg.enabled());
  // test.y: skip 2 then every 4th hit, capped at 7 fires.
  int fires = 0;
  for (int i = 0; i < 10; ++i) {
    if (DBPS_FAILPOINT("test.y")) ++fires;
  }
  EXPECT_EQ(fires, 2);  // hits 6 and 10 (post-skip counts 4 and 8)
}

TEST_F(FailpointTest, ConfigureFromStringOffDisables) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 1;
  reg.Configure("test.off", spec);
  ASSERT_TRUE(reg.ConfigureFromString("test.off=off").ok());
  EXPECT_FALSE(DBPS_FAILPOINT("test.off"));
}

TEST_F(FailpointTest, ConfigureFromStringRejectsGarbage) {
  auto& reg = FailpointRegistry::Instance();
  EXPECT_FALSE(reg.ConfigureFromString("test.bad=nope:1").ok());
  EXPECT_FALSE(reg.ConfigureFromString("test.bad=p:notanumber").ok());
  EXPECT_FALSE(reg.ConfigureFromString("justasite").ok());
  EXPECT_FALSE(reg.ConfigureFromString("=p:0.5").ok());
  // Failed parses must not leave half-armed state behind.
  EXPECT_FALSE(DBPS_FAILPOINT("test.bad"));
}

TEST_F(FailpointTest, ChaosProfileArmsCanonicalSites) {
  ApplyChaosProfile(/*fail_rate=*/0.5, /*seed=*/7);
  auto& reg = FailpointRegistry::Instance();
  EXPECT_TRUE(reg.enabled());
  EXPECT_FALSE(DefaultChaosSites().empty());
  // Every canonical site must be configured (stats entry exists after a
  // hit even if it does not fire).
  for (const std::string& site : DefaultChaosSites()) {
    (void)reg.Evaluate(site.c_str());
    EXPECT_GE(reg.GetSiteStats(site).hits, 1u) << site;
  }
  reg.DisableAll();
  EXPECT_FALSE(reg.enabled());
}

TEST_F(FailpointTest, GetAllStatsListsConfiguredSites) {
  auto& reg = FailpointRegistry::Instance();
  FailpointSpec spec;
  spec.one_in = 2;
  reg.Configure("test.stats", spec);
  (void)DBPS_FAILPOINT("test.stats");
  (void)DBPS_FAILPOINT("test.stats");
  auto all = reg.GetAllStats();
  bool found = false;
  for (const auto& [site, stats] : all) {
    if (site == "test.stats") {
      found = true;
      EXPECT_EQ(stats.hits, 2u);
      EXPECT_EQ(stats.fires, 1u);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace dbps
