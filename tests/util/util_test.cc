#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace dbps {
namespace {

// --- Status -----------------------------------------------------------

TEST(Status, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(Status, ErrorCarriesCodeAndMessage) {
  Status st = Status::NotFound("missing widget");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsNotFound());
  EXPECT_EQ(st.message(), "missing widget");
  EXPECT_EQ(st.ToString(), "NotFound: missing widget");
}

TEST(Status, CopyAndMovePreserveState) {
  Status st = Status::Deadlock("cycle");
  Status copy = st;
  EXPECT_TRUE(copy.IsDeadlock());
  EXPECT_EQ(copy, st);
  Status moved = std::move(copy);
  EXPECT_TRUE(moved.IsDeadlock());
}

TEST(Status, EveryFactoryMatchesItsPredicate) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::ParseError("x").IsParseError());
  EXPECT_TRUE(Status::TypeError("x").IsTypeError());
  EXPECT_TRUE(Status::LockTimeout("x").IsLockTimeout());
  EXPECT_TRUE(Status::Aborted("x").IsAborted());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnNotOk(int x) {
  DBPS_RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(Status, ReturnNotOkPropagates) {
  EXPECT_TRUE(UsesReturnNotOk(1).ok());
  EXPECT_TRUE(UsesReturnNotOk(-1).IsInvalidArgument());
}

// --- StatusOr -----------------------------------------------------------

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  DBPS_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(StatusOr, ValueAndErrorPaths) {
  auto ok = Half(10);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.ValueOrDie(), 5);
  EXPECT_EQ(*ok, 5);

  auto err = Half(3);
  EXPECT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInvalidArgument());
  EXPECT_EQ(err.ValueOr(-1), -1);
}

TEST(StatusOr, AssignOrReturnChains) {
  EXPECT_EQ(Quarter(8).ValueOrDie(), 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
}

TEST(StatusOr, OkStatusBecomesInternalError) {
  StatusOr<int> bad{Status::OK()};
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInternal());
}

// --- Random ---------------------------------------------------------------

TEST(Random, DeterministicForSameSeed) {
  Random a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(Random, DifferentSeedsDiverge) {
  Random a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next64() == b.Next64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Random, UniformStaysInRange) {
  Random rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Random, UniformCoversAllResidues) {
  Random rng(99);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Uniform(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Random, SampleReturnsDistinctIndices) {
  Random rng(5);
  auto sample = rng.Sample(100, 20);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 20u);
  for (size_t index : sample) EXPECT_LT(index, 100u);
}

TEST(Random, ShuffleIsAPermutation) {
  Random rng(11);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Random, BernoulliExtremes) {
  Random rng(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

// --- string_util -----------------------------------------------------------

TEST(StringUtil, SplitBasics) {
  EXPECT_EQ(Split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Split("a,,c", ','), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(Split(",x,", ','), (std::vector<std::string>{"", "x", ""}));
}

TEST(StringUtil, JoinBasics) {
  EXPECT_EQ(Join(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringUtil, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("x"), "x");
}

TEST(StringUtil, StringPrintf) {
  EXPECT_EQ(StringPrintf("%d-%s", 42, "ok"), "42-ok");
  EXPECT_EQ(StringPrintf("%.2f", 1.5), "1.50");
}

// --- ThreadPool -----------------------------------------------------------

TEST(ThreadPool, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(pool.Submit([&counter] { counter.fetch_add(1); }));
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIdleIsABarrier) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < 8; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
    pool.WaitIdle();
    EXPECT_EQ(counter.load(), (round + 1) * 8);
  }
}

TEST(ThreadPool, SubmitAfterShutdownFails) {
  ThreadPool pool(1);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([] {}));
}

TEST(ThreadPool, ActuallyParallel) {
  ThreadPool pool(4);
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    pool.Submit([&] {
      int now = concurrent.fetch_add(1) + 1;
      int old = peak.load();
      while (now > old && !peak.compare_exchange_weak(old, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      concurrent.fetch_sub(1);
    });
  }
  pool.WaitIdle();
  EXPECT_GE(peak.load(), 2);
}

}  // namespace
}  // namespace dbps
