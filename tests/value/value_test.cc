#include <gtest/gtest.h>

#include <thread>
#include <unordered_set>

#include "value/symbol_table.h"
#include "value/value.h"

namespace dbps {
namespace {

// --- SymbolTable ------------------------------------------------------

TEST(SymbolTable, NilIsSlotZero) {
  EXPECT_EQ(Sym("nil"), kNilSymbol);
  EXPECT_EQ(SymName(kNilSymbol), "nil");
}

TEST(SymbolTable, InternIsIdempotent) {
  SymbolId a = Sym("idempotent-check");
  SymbolId b = Sym("idempotent-check");
  EXPECT_EQ(a, b);
  EXPECT_EQ(SymName(a), "idempotent-check");
}

TEST(SymbolTable, DistinctNamesGetDistinctIds) {
  EXPECT_NE(Sym("alpha-sym"), Sym("beta-sym"));
}

TEST(SymbolTable, ConcurrentInternIsSafe) {
  std::vector<std::thread> threads;
  std::vector<SymbolId> results(8);
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([i, &results] {
      results[static_cast<size_t>(i)] = Sym("concurrent-symbol");
    });
  }
  for (auto& t : threads) t.join();
  for (int i = 1; i < 8; ++i) EXPECT_EQ(results[0], results[static_cast<size_t>(i)]);
}

// --- Value basics ---------------------------------------------------------

TEST(Value, DefaultIsNil) {
  Value v;
  EXPECT_TRUE(v.is_nil());
  EXPECT_EQ(v, Value::Nil());
  EXPECT_EQ(v.ToString(), "nil");
}

TEST(Value, NilSymbolIsNilValue) {
  // OPS5: the symbol `nil` and the unset value are the same thing.
  EXPECT_EQ(Value::Symbol("nil"), Value::Nil());
  EXPECT_TRUE(Value::Symbol(kNilSymbol).is_nil());
  EXPECT_EQ(Value::Nil().AsSymbol(), kNilSymbol);
}

TEST(Value, IntAccessors) {
  Value v = Value::Int(-42);
  EXPECT_TRUE(v.is_int());
  EXPECT_TRUE(v.is_number());
  EXPECT_EQ(v.AsInt(), -42);
  EXPECT_EQ(v.AsNumber(), -42.0);
  EXPECT_EQ(v.ToString(), "-42");
}

TEST(Value, FloatAccessors) {
  Value v = Value::Float(2.5);
  EXPECT_TRUE(v.is_float());
  EXPECT_EQ(v.AsFloat(), 2.5);
  EXPECT_EQ(v.ToString(), "2.5");
}

TEST(Value, SymbolAccessors) {
  Value v = Value::Symbol("red");
  EXPECT_TRUE(v.is_symbol());
  EXPECT_EQ(SymName(v.AsSymbol()), "red");
  EXPECT_EQ(v.ToString(), "red");
}

TEST(Value, StringAccessors) {
  Value v = Value::String("hello world");
  EXPECT_TRUE(v.is_string());
  EXPECT_EQ(v.AsString(), "hello world");
  EXPECT_EQ(v.ToString(), "\"hello world\"");
}

// --- Equality ---------------------------------------------------------------

TEST(Value, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int(3), Value::Float(3.0));
  EXPECT_EQ(Value::Float(3.0), Value::Int(3));
  EXPECT_NE(Value::Int(3), Value::Float(3.5));
}

TEST(Value, SymbolsCompareByIdentity) {
  EXPECT_EQ(Value::Symbol("x-eq"), Value::Symbol("x-eq"));
  EXPECT_NE(Value::Symbol("x-eq"), Value::Symbol("y-eq"));
}

TEST(Value, StringsCompareByContent) {
  EXPECT_EQ(Value::String("ab"), Value::String("ab"));
  EXPECT_NE(Value::String("ab"), Value::String("ba"));
}

TEST(Value, DifferentKindsAreUnequal) {
  EXPECT_NE(Value::Symbol("3"), Value::Int(3));
  EXPECT_NE(Value::String("3"), Value::Int(3));
  EXPECT_NE(Value::Nil(), Value::Int(0));
  EXPECT_NE(Value::Nil(), Value::String(""));
}

// --- Ordering -----------------------------------------------------------

TEST(Value, NumericOrderingCrossesTypes) {
  EXPECT_TRUE(Value::Int(2) < Value::Float(2.5));
  EXPECT_TRUE(Value::Float(1.5) < Value::Int(2));
  EXPECT_TRUE(Value::Int(3) >= Value::Int(3));
  EXPECT_TRUE(Value::Int(3) <= Value::Float(3.0));
}

TEST(Value, StringOrderingIsLexicographic) {
  EXPECT_TRUE(Value::String("abc") < Value::String("abd"));
  EXPECT_FALSE(Value::String("b") < Value::String("a"));
}

TEST(Value, ComparabilityRules) {
  EXPECT_TRUE(Value::Int(1).Comparable(Value::Float(2.0)));
  EXPECT_TRUE(Value::String("a").Comparable(Value::String("b")));
  EXPECT_FALSE(Value::Symbol("a-ord").Comparable(Value::Symbol("b-ord")));
  EXPECT_FALSE(Value::Int(1).Comparable(Value::Symbol("one")));
  EXPECT_FALSE(Value::Nil().Comparable(Value::Nil()));
}

// --- Hashing -----------------------------------------------------------

TEST(Value, EqualValuesHashEqual) {
  EXPECT_EQ(Value::Int(3).Hash(), Value::Float(3.0).Hash());
  EXPECT_EQ(Value::Symbol("h-x").Hash(), Value::Symbol("h-x").Hash());
  EXPECT_EQ(Value::String("s").Hash(), Value::String("s").Hash());
}

TEST(Value, HashSpreads) {
  std::unordered_set<size_t> hashes;
  for (int i = 0; i < 1000; ++i) hashes.insert(Value::Int(i).Hash());
  EXPECT_GT(hashes.size(), 990u);
}

TEST(Value, UsableAsHashKey) {
  std::unordered_set<Value, ValueHash> set;
  set.insert(Value::Int(1));
  set.insert(Value::Float(1.0));  // equal to Int(1) — must dedupe
  set.insert(Value::Symbol("k"));
  EXPECT_EQ(set.size(), 2u);
  EXPECT_TRUE(set.count(Value::Int(1)) > 0);
}

}  // namespace
}  // namespace dbps
