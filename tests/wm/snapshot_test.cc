// Versioned snapshot reads: WmSnapshot pins a CSN and observes working
// memory exactly as of that commit, while later commits proceed; dead
// versions are retained only while a snapshot can see them.

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "wm/working_memory.h"

namespace dbps {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(wm_.CreateRelation("item", {{"id", AttrType::kInt},
                                            {"qty", AttrType::kInt}})
                    .ok());
  }

  WmePtr Insert(int64_t id, int64_t qty) {
    auto wme = wm_.Insert("item", {Value::Int(id), Value::Int(qty)});
    EXPECT_TRUE(wme.ok());
    return wme.ValueOrDie();
  }

  WorkingMemory wm_;
};

TEST_F(SnapshotTest, CsnAdvancesPerCommit) {
  EXPECT_EQ(wm_.csn(), 0u);
  WmePtr a = Insert(1, 10);
  EXPECT_EQ(wm_.csn(), 1u);
  ASSERT_TRUE(wm_.Delete(a->id()).ok());
  EXPECT_EQ(wm_.csn(), 2u);

  Delta delta;
  delta.Create(Sym("item"), {Value::Int(2), Value::Int(5)});
  delta.Create(Sym("item"), {Value::Int(3), Value::Int(6)});
  auto change = wm_.Apply(delta);
  ASSERT_TRUE(change.ok());
  // One Apply = one commit = one CSN, stamped on the change.
  EXPECT_EQ(wm_.csn(), 3u);
  EXPECT_EQ(change.ValueOrDie().csn, 3u);
}

TEST_F(SnapshotTest, SnapshotIsImmuneToLaterCommits) {
  WmePtr a = Insert(1, 10);
  WmePtr b = Insert(2, 20);

  WmSnapshot snap = wm_.SnapshotAt();
  ASSERT_TRUE(snap.valid());
  EXPECT_EQ(snap.csn(), 2u);

  // Later commits: delete a, modify b, insert c.
  ASSERT_TRUE(wm_.Delete(a->id()).ok());
  Delta delta;
  delta.Modify(b->id(), {{1, Value::Int(99)}});
  delta.Create(Sym("item"), {Value::Int(3), Value::Int(30)});
  ASSERT_TRUE(wm_.Apply(delta).ok());

  // Live view moved on...
  EXPECT_EQ(wm_.Count(Sym("item")), 2u);
  EXPECT_EQ(wm_.Get(a->id()), nullptr);
  // ...but the snapshot still reads the pinned commit.
  EXPECT_EQ(snap.Count(Sym("item")), 2u);
  WmePtr snap_a = snap.Get(a->id());
  ASSERT_NE(snap_a, nullptr);
  EXPECT_EQ(snap_a->value(1), Value::Int(10));
  WmePtr snap_b = snap.Get(b->id());
  ASSERT_NE(snap_b, nullptr);
  EXPECT_EQ(snap_b->value(1), Value::Int(20));  // pre-modify version
  EXPECT_TRUE(snap.IsCurrent(b->id(), b->tag()));
  EXPECT_FALSE(wm_.IsCurrent(b->id(), b->tag()));

  std::vector<WmePtr> scanned = snap.Scan(Sym("item"));
  EXPECT_EQ(scanned.size(), 2u);
  for (const WmePtr& wme : scanned) {
    EXPECT_NE(wme->value(1), Value::Int(99));
    EXPECT_NE(wme->value(0), Value::Int(3));
  }
}

TEST_F(SnapshotTest, VersionsPrunedOnceUnobservable) {
  WmePtr a = Insert(1, 10);
  {
    WmSnapshot snap = wm_.SnapshotAt();
    ASSERT_TRUE(wm_.Delete(a->id()).ok());
    // The dead version is retained for the live snapshot...
    EXPECT_EQ(wm_.retained_versions(), 1u);
    EXPECT_NE(snap.Get(a->id()), nullptr);
  }
  // ...and dropped by the next commit after the snapshot dies.
  Insert(2, 20);
  EXPECT_EQ(wm_.retained_versions(), 0u);
}

TEST_F(SnapshotTest, NoSnapshotsMeansNoRetention) {
  WmePtr a = Insert(1, 10);
  ASSERT_TRUE(wm_.Delete(a->id()).ok());
  Delta delta;
  delta.Create(Sym("item"), {Value::Int(2), Value::Int(7)});
  ASSERT_TRUE(wm_.Apply(delta).ok());
  EXPECT_EQ(wm_.retained_versions(), 0u);
}

TEST_F(SnapshotTest, OlderSnapshotHoldsTheHorizon) {
  WmePtr a = Insert(1, 10);
  WmSnapshot old_snap = wm_.SnapshotAt();  // csn 1
  WmePtr b = Insert(2, 20);
  WmSnapshot new_snap = wm_.SnapshotAt();  // csn 2
  ASSERT_TRUE(wm_.Delete(a->id()).ok());
  ASSERT_TRUE(wm_.Delete(b->id()).ok());
  EXPECT_EQ(wm_.retained_versions(), 2u);

  // Destroying the NEWER snapshot must not free what the older one sees.
  new_snap = WmSnapshot();
  Insert(3, 30);  // a commit gives pruning a chance to run
  EXPECT_NE(old_snap.Get(a->id()), nullptr);
  EXPECT_EQ(old_snap.Get(b->id()), nullptr);  // b was never visible at csn 1
}

TEST_F(SnapshotTest, MoveTransfersThePin) {
  WmePtr a = Insert(1, 10);
  WmSnapshot snap = wm_.SnapshotAt();
  WmSnapshot moved = std::move(snap);
  EXPECT_FALSE(snap.valid());  // NOLINT(bugprone-use-after-move): asserting
  ASSERT_TRUE(moved.valid());
  ASSERT_TRUE(wm_.Delete(a->id()).ok());
  EXPECT_NE(moved.Get(a->id()), nullptr);
}

TEST_F(SnapshotTest, CloneCarriesTheCsnButNotTheHistory) {
  WmePtr a = Insert(1, 10);
  WmSnapshot snap = wm_.SnapshotAt();
  ASSERT_TRUE(wm_.Delete(a->id()).ok());

  std::unique_ptr<WorkingMemory> clone = wm_.Clone();
  EXPECT_EQ(clone->csn(), wm_.csn());
  EXPECT_EQ(clone->retained_versions(), 0u);
  // New commits in the clone continue the CSN sequence.
  ASSERT_TRUE(clone->Insert("item", {Value::Int(5), Value::Int(50)})
                  .ok());
  EXPECT_EQ(clone->csn(), wm_.csn() + 1);
}

TEST_F(SnapshotTest, ConcurrentReadersSeeTheirOwnCsn) {
  // Writers commit while readers pin/read/drop snapshots — under TSan
  // this exercises the mu_/snap_mu_ interplay.
  constexpr int kCommits = 50;
  std::thread writer([&] {
    for (int i = 0; i < kCommits; ++i) {
      auto wme = wm_.Insert("item",
                            {Value::Int(100 + i), Value::Int(i)});
      ASSERT_TRUE(wme.ok());
      if (i % 2 == 0) {
        ASSERT_TRUE(wm_.Delete(wme.ValueOrDie()->id()).ok());
      }
    }
  });
  std::thread reader([&] {
    for (int i = 0; i < kCommits; ++i) {
      WmSnapshot snap = wm_.SnapshotAt();
      const size_t count = snap.Count(Sym("item"));
      // The count at a pinned CSN must be stable across re-reads.
      EXPECT_EQ(snap.Scan(Sym("item")).size(), count);
      EXPECT_EQ(snap.Count(Sym("item")), count);
    }
  });
  writer.join();
  reader.join();
  // Pruning is piggybacked on commits; one more commit with no snapshots
  // alive must drain the whole history.
  Insert(999, 0);
  EXPECT_EQ(wm_.retained_versions(), 0u);
}

}  // namespace
}  // namespace dbps
