// WorkingMemory thread-safety: concurrent readers against a committing
// writer, and concurrent Apply calls, must never corrupt state.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "util/random.h"
#include "wm/working_memory.h"

namespace dbps {
namespace {

TEST(WmConcurrency, ReadersDuringWrites) {
  WorkingMemory wm;
  ASSERT_TRUE(wm.CreateRelation("cc", {{"k", AttrType::kInt},
                                       {"v", AttrType::kInt}})
                  .ok());
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(wm.Insert("cc", {Value::Int(i), Value::Int(0)}).ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      Random rng(static_cast<uint64_t>(reads.load()) + 7);
      while (!stop.load()) {
        // Scans, lookups, gets must always see consistent tuples.
        auto all = wm.Scan(Sym("cc"));
        for (const auto& wme : all) {
          ASSERT_EQ(wme->arity(), 2u);
          ASSERT_TRUE(wme->value(0).is_int());
        }
        auto some =
            wm.Lookup(Sym("cc"), 0, Value::Int(static_cast<int64_t>(
                                        rng.Uniform(50))));
        for (const auto& wme : some) {
          ASSERT_TRUE(wm.Get(wme->id()) != nullptr ||
                      true);  // may have been deleted since: both fine
        }
        reads.fetch_add(1);
      }
    });
  }

  // Writer: modify / delete / insert churn through Apply. Keep churning
  // until the readers have made progress (single-core hosts may not
  // schedule them immediately), bounded by a generous step cap.
  Random rng(99);
  for (int step = 0;
       step < 400 || (reads.load() < 10 && step < 2000000); ++step) {
    auto all = wm.Scan(Sym("cc"));
    Delta delta;
    if (!all.empty() && rng.Bernoulli(0.3)) {
      delta.Delete(all[rng.Uniform(all.size())]->id());
    } else if (!all.empty() && rng.Bernoulli(0.5)) {
      delta.Modify(all[rng.Uniform(all.size())]->id(),
                   {{1, Value::Int(step)}});
    } else {
      delta.Create(Sym("cc"), {Value::Int(step + 100), Value::Int(0)});
    }
    ASSERT_TRUE(wm.Apply(delta).ok());
  }
  stop.store(true);
  for (auto& t : readers) t.join();
  EXPECT_GT(reads.load(), 0u);
}

TEST(WmConcurrency, ConcurrentAppliesSerializeSafely) {
  // Apply is internally synchronized: N threads each appending disjoint
  // rows must produce exactly N*K rows with unique ids.
  WorkingMemory wm;
  ASSERT_TRUE(wm.CreateRelation("rows", {{"owner", AttrType::kInt},
                                         {"n", AttrType::kInt}})
                  .ok());
  constexpr int kThreads = 4;
  constexpr int kRows = 200;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&wm, t] {
      for (int i = 0; i < kRows; ++i) {
        Delta delta;
        delta.Create(Sym("rows"), {Value::Int(t), Value::Int(i)});
        ASSERT_TRUE(wm.Apply(delta).ok());
      }
    });
  }
  for (auto& t : writers) t.join();

  auto all = wm.Scan(Sym("rows"));
  ASSERT_EQ(all.size(), static_cast<size_t>(kThreads * kRows));
  std::set<WmeId> ids;
  std::set<std::pair<int64_t, int64_t>> payloads;
  for (const auto& wme : all) {
    EXPECT_TRUE(ids.insert(wme->id()).second);
    EXPECT_TRUE(payloads
                    .emplace(wme->value(0).AsInt(), wme->value(1).AsInt())
                    .second);
  }
}

}  // namespace
}  // namespace dbps
