#include <gtest/gtest.h>

#include "wm/working_memory.h"

namespace dbps {
namespace {

class WorkingMemoryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(wm_.CreateRelation("box", {{"id", AttrType::kInt},
                                           {"at", AttrType::kSymbol},
                                           {"weight", AttrType::kInt}})
                    .ok());
    ASSERT_TRUE(
        wm_.CreateRelation("robot", {{"name", AttrType::kSymbol},
                                     {"holding", AttrType::kAny}})
            .ok());
  }

  WorkingMemory wm_;
};

// --- schema ------------------------------------------------------------

TEST_F(WorkingMemoryTest, DuplicateRelationRejected) {
  Status st = wm_.CreateRelation("box", {{"id", AttrType::kInt}});
  EXPECT_TRUE(st.IsAlreadyExists());
}

TEST_F(WorkingMemoryTest, SchemaLookup) {
  auto schema = wm_.catalog().GetRelation(Sym("box"));
  ASSERT_TRUE(schema.ok());
  EXPECT_EQ((*schema)->arity(), 3u);
  EXPECT_EQ((*schema)->AttrIndex(Sym("at")).value(), 1u);
  EXPECT_FALSE((*schema)->AttrIndex(Sym("nope")).has_value());
  EXPECT_TRUE(wm_.catalog().GetRelation(Sym("missing")).status().IsNotFound());
}

TEST(RelationSchema, TypeChecking) {
  RelationSchema schema(Sym("typed"), {AttrDef{Sym("n"), AttrType::kInt},
                                       AttrDef{Sym("s"), AttrType::kSymbol}});
  EXPECT_TRUE(
      schema.CheckTuple({Value::Int(1), Value::Symbol("ok")}).ok());
  // nil is admissible anywhere.
  EXPECT_TRUE(schema.CheckTuple({Value::Nil(), Value::Nil()}).ok());
  // Wrong arity.
  EXPECT_TRUE(schema.CheckTuple({Value::Int(1)}).IsTypeError());
  // Wrong type.
  EXPECT_TRUE(schema.CheckTuple({Value::Symbol("x"), Value::Symbol("y")})
                  .IsTypeError());
}

TEST(RelationSchema, NumberTypeAdmitsIntAndFloat) {
  RelationSchema schema(Sym("numrel"), {AttrDef{Sym("v"), AttrType::kNumber}});
  EXPECT_TRUE(schema.CheckTuple({Value::Int(1)}).ok());
  EXPECT_TRUE(schema.CheckTuple({Value::Float(1.5)}).ok());
  EXPECT_TRUE(schema.CheckTuple({Value::Symbol("x")}).IsTypeError());
}

// --- insert/delete/get ------------------------------------------------------

TEST_F(WorkingMemoryTest, InsertAssignsIdsAndTags) {
  auto a = wm_.Insert("box", {Value::Int(1), Value::Symbol("dock"),
                              Value::Int(10)});
  auto b = wm_.Insert("box", {Value::Int(2), Value::Symbol("dock"),
                              Value::Int(20)});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_LT((*a)->id(), (*b)->id());
  EXPECT_LT((*a)->tag(), (*b)->tag());
  EXPECT_EQ(wm_.Count(Sym("box")), 2u);
  EXPECT_EQ(wm_.TotalCount(), 2u);
}

TEST_F(WorkingMemoryTest, InsertChecksSchema) {
  EXPECT_TRUE(wm_.Insert("box", {Value::Int(1)}).status().IsTypeError());
  EXPECT_TRUE(wm_.Insert("nope", {}).status().IsNotFound());
  EXPECT_TRUE(wm_.Insert("box", {Value::Symbol("x"), Value::Symbol("d"),
                                 Value::Int(1)})
                  .status()
                  .IsTypeError());
}

TEST_F(WorkingMemoryTest, GetAndIsCurrent) {
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(5)})
                 .ValueOrDie();
  EXPECT_EQ(wm_.Get(wme->id())->tag(), wme->tag());
  EXPECT_TRUE(wm_.IsCurrent(wme->id(), wme->tag()));
  EXPECT_FALSE(wm_.IsCurrent(wme->id(), wme->tag() + 1));
  EXPECT_EQ(wm_.Get(9999), nullptr);
}

TEST_F(WorkingMemoryTest, DeleteRemoves) {
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(5)})
                 .ValueOrDie();
  auto removed = wm_.Delete(wme->id());
  ASSERT_TRUE(removed.ok());
  EXPECT_EQ((*removed)->id(), wme->id());
  EXPECT_EQ(wm_.Get(wme->id()), nullptr);
  EXPECT_EQ(wm_.Count(Sym("box")), 0u);
  EXPECT_TRUE(wm_.Delete(wme->id()).status().IsNotFound());
}

// --- scans & indexes -----------------------------------------------------

TEST_F(WorkingMemoryTest, ScanAndLookup) {
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(wm_.Insert("box",
                           {Value::Int(i),
                            Value::Symbol(i % 2 == 0 ? "even" : "odd"),
                            Value::Int(i * 10)})
                    .ok());
  }
  EXPECT_EQ(wm_.Scan(Sym("box")).size(), 10u);
  EXPECT_EQ(wm_.Scan(Sym("robot")).size(), 0u);
  // Unindexed lookup falls back to a scan.
  EXPECT_EQ(wm_.Lookup(Sym("box"), 1, Value::Symbol("even")).size(), 5u);
}

TEST_F(WorkingMemoryTest, IndexedLookupMatchesScan) {
  ASSERT_TRUE(wm_.CreateIndex(Sym("box"), Sym("at")).ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(wm_.Insert("box",
                           {Value::Int(i),
                            Value::Symbol(i % 3 == 0 ? "a" : "b"),
                            Value::Int(i)})
                    .ok());
  }
  EXPECT_EQ(wm_.Lookup(Sym("box"), 1, Value::Symbol("a")).size(), 7u);
  EXPECT_EQ(wm_.Lookup(Sym("box"), 1, Value::Symbol("b")).size(), 13u);
  EXPECT_EQ(wm_.Lookup(Sym("box"), 1, Value::Symbol("c")).size(), 0u);
}

TEST_F(WorkingMemoryTest, IndexCreatedAfterInsertsBackfills) {
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        wm_.Insert("box", {Value::Int(i), Value::Symbol("spot"),
                           Value::Int(i)})
            .ok());
  }
  ASSERT_TRUE(wm_.CreateIndex(Sym("box"), Sym("at")).ok());
  EXPECT_EQ(wm_.Lookup(Sym("box"), 1, Value::Symbol("spot")).size(), 6u);
}

TEST_F(WorkingMemoryTest, IndexMaintainedAcrossDelta) {
  ASSERT_TRUE(wm_.CreateIndex(Sym("box"), Sym("at")).ok());
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(1)})
                 .ValueOrDie();
  Delta delta;
  delta.Modify(wme->id(), {{1, Value::Symbol("b")}});
  ASSERT_TRUE(wm_.Apply(delta).ok());
  EXPECT_EQ(wm_.Lookup(Sym("box"), 1, Value::Symbol("a")).size(), 0u);
  EXPECT_EQ(wm_.Lookup(Sym("box"), 1, Value::Symbol("b")).size(), 1u);
}

TEST_F(WorkingMemoryTest, DuplicateIndexRejected) {
  ASSERT_TRUE(wm_.CreateIndex(Sym("box"), Sym("at")).ok());
  EXPECT_TRUE(wm_.CreateIndex(Sym("box"), Sym("at")).IsAlreadyExists());
  EXPECT_TRUE(wm_.CreateIndex(Sym("box"), Sym("zzz")).IsNotFound());
}

// --- Delta / Apply -----------------------------------------------------

TEST_F(WorkingMemoryTest, ApplyCreateModifyDelete) {
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(5)})
                 .ValueOrDie();

  Delta delta;
  delta.Create(Sym("robot"), {Value::Symbol("r2"), Value::Nil()});
  delta.Modify(wme->id(), {{2, Value::Int(6)}});
  auto change_or = wm_.Apply(delta);
  ASSERT_TRUE(change_or.ok());
  const WmChange& change = change_or.ValueOrDie();

  // One create + one modify = 2 added, 1 removed.
  EXPECT_EQ(change.added.size(), 2u);
  EXPECT_EQ(change.removed.size(), 1u);
  EXPECT_EQ(change.removed[0]->tag(), wme->tag());

  // The modify keeps the id, bumps the tag, changes the field.
  WmePtr updated = wm_.Get(wme->id());
  EXPECT_EQ(updated->id(), wme->id());
  EXPECT_GT(updated->tag(), wme->tag());
  EXPECT_EQ(updated->value(2), Value::Int(6));
  // Untouched fields preserved.
  EXPECT_EQ(updated->value(1), Value::Symbol("a"));

  Delta del;
  del.Delete(wme->id());
  ASSERT_TRUE(wm_.Apply(del).ok());
  EXPECT_EQ(wm_.Get(wme->id()), nullptr);
}

TEST_F(WorkingMemoryTest, ApplyIsAtomicOnFailure) {
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(5)})
                 .ValueOrDie();
  Delta delta;
  delta.Create(Sym("robot"), {Value::Symbol("r2"), Value::Nil()});
  delta.Delete(9999);  // dead — whole delta must be rejected
  EXPECT_TRUE(wm_.Apply(delta).status().IsNotFound());
  EXPECT_EQ(wm_.Count(Sym("robot")), 0u);  // create was not applied
  EXPECT_TRUE(wm_.IsCurrent(wme->id(), wme->tag()));
}

TEST_F(WorkingMemoryTest, ApplyRejectsModifyAfterDeleteOfSameWme) {
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(5)})
                 .ValueOrDie();
  Delta delta;
  delta.Delete(wme->id());
  delta.Modify(wme->id(), {{2, Value::Int(9)}});
  EXPECT_FALSE(wm_.Apply(delta).ok());
}

TEST_F(WorkingMemoryTest, ApplyAllowsModifyThenDelete) {
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(5)})
                 .ValueOrDie();
  Delta delta;
  delta.Modify(wme->id(), {{2, Value::Int(9)}});
  delta.Delete(wme->id());
  auto change = wm_.Apply(delta);
  ASSERT_TRUE(change.ok()) << change.status();
  EXPECT_EQ(wm_.Get(wme->id()), nullptr);
}

TEST_F(WorkingMemoryTest, DeterministicIdAssignment) {
  // Identical deltas applied to clones assign identical ids — the
  // property the replay validator depends on.
  auto clone = wm_.Clone();
  Delta delta;
  delta.Create(Sym("box"),
               {Value::Int(7), Value::Symbol("z"), Value::Int(1)});
  delta.Create(Sym("robot"), {Value::Symbol("r"), Value::Nil()});
  auto a = wm_.Apply(delta).ValueOrDie();
  auto b = clone->Apply(delta).ValueOrDie();
  ASSERT_EQ(a.added.size(), b.added.size());
  for (size_t i = 0; i < a.added.size(); ++i) {
    EXPECT_EQ(a.added[i]->id(), b.added[i]->id());
    EXPECT_EQ(a.added[i]->tag(), b.added[i]->tag());
  }
}

TEST_F(WorkingMemoryTest, CloneIsIndependent) {
  auto wme = wm_.Insert("box", {Value::Int(1), Value::Symbol("a"),
                                Value::Int(5)})
                 .ValueOrDie();
  auto clone = wm_.Clone();
  ASSERT_TRUE(wm_.Delete(wme->id()).ok());
  EXPECT_EQ(clone->Count(Sym("box")), 1u);
  EXPECT_EQ(wm_.Count(Sym("box")), 0u);
}

TEST(Delta, EqualityAndToString) {
  Delta a, b;
  a.Create(Sym("r-delta"), {Value::Int(1)});
  b.Create(Sym("r-delta"), {Value::Int(1)});
  EXPECT_TRUE(a == b);
  b.SetHalt();
  EXPECT_FALSE(a == b);
  EXPECT_NE(b.ToString().find("halt"), std::string::npos);
  Delta c;
  c.Modify(3, {{0, Value::Int(2)}});
  Delta d;
  d.Delete(3);
  EXPECT_FALSE(c == d);
  EXPECT_TRUE(Delta{} == Delta{});
  EXPECT_TRUE(Delta{}.empty());
}

}  // namespace
}  // namespace dbps
