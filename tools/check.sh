#!/usr/bin/env sh
# Tier-1 check: configure, build, run the full test suite.
#
#   tools/check.sh                      # plain RelWithDebInfo build
#   DBPS_SANITIZE=thread tools/check.sh # TSan build (covers src/server/)
#   DBPS_SANITIZE=address tools/check.sh
#   DBPS_TIER=chaos tools/check.sh      # fault-injection tier: runs only the
#                                       # failpoint/fault/chaos suites, then a
#                                       # fixed-seed chaos smoke of dbps_run
#                                       # (combine with DBPS_SANITIZE=thread
#                                       # for the full robustness gate)
#   DBPS_TIER=bench tools/check.sh      # bench smoke tier: runs the two
#                                       # JSON-emitting benches at 2 threads,
#                                       # fails if BENCH_*.json is missing or
#                                       # malformed or if the lock manager's
#                                       # CAS fast path never fired on the
#                                       # uncontended sweep, then refreshes
#                                       # the checked-in copies at the repo
#                                       # root and under bench/results/
#
# The build directory is build/ for plain runs and build-<sanitizer>/
# for sanitizer runs, so they never poison each other's caches.
set -eu

cd "$(dirname "$0")/.."

SANITIZE="${DBPS_SANITIZE:-}"
TIER="${DBPS_TIER:-}"
if [ -n "$SANITIZE" ]; then
  BUILD_DIR="build-$SANITIZE"
else
  BUILD_DIR="build"
fi

cmake -B "$BUILD_DIR" -S . -DDBPS_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"

if [ "$TIER" = "chaos" ]; then
  # Robustness tier: the failpoint unit tests, the engine fault-injection
  # suite, and the seeded chaos trials (see docs/ROBUSTNESS.md).
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure \
    -R 'Failpoint|FaultInjection|Chaos|chaos'
  # Deterministic end-to-end smoke: a multi-session server run with the
  # chaos profile armed must still replay-validate its commit log.
  for seed in 11 23 47; do
    "$BUILD_DIR/tools/dbps_run" --engine=parallel --workers=4 \
      --sessions=3 --client-ops=6 --chaos-seed="$seed" --fail-rate=0.05 \
      --validate --quiet examples/programs/server_inbox.dbps
  done
  echo "chaos tier passed"
elif [ "$TIER" = "bench" ]; then
  # Bench smoke tier: both JSON-emitting benches at 2 threads. The point
  # is not performance numbers but that the binaries run end-to-end and
  # emit well-formed BENCH_*.json artifacts (see bench/report.h).
  JSON_DIR="$BUILD_DIR/bench-json"
  rm -rf "$JSON_DIR"
  mkdir -p "$JSON_DIR"
  DBPS_BENCH_THREADS=2 DBPS_BENCH_JSON_DIR="$JSON_DIR" \
    "$BUILD_DIR/bench/bench_multi_user"
  DBPS_BENCH_THREADS=2 DBPS_BENCH_JSON_DIR="$JSON_DIR" \
    "$BUILD_DIR/bench/bench_lock_protocols" --benchmark_filter='^$'
  for name in multi_user lock_protocols; do
    python3 - "$JSON_DIR/BENCH_$name.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["bench"], path
assert doc["rows"], f"{path}: no rows"
keys = ("workload", "threads", "protocol", "wall_ms", "aborts",
        "committed", "fast_path_grants", "fast_hit_pct",
        "batched_commits")
sweep_rows = 0
for row in doc["rows"]:
    for key in keys:
        assert key in row, f"{path}: row missing {key}"
    if row["workload"] == "uncontended_sweep":
        sweep_rows += 1
        # The uncontended sweep is the fast path's home turf: zero
        # grants there means the CAS fast path is broken or disabled.
        assert row["fast_path_grants"] > 0, (
            f"{path}: fast path never fired on uncontended sweep "
            f"({row['protocol']})")
        assert row["fast_hit_pct"] > 90.0, (
            f"{path}: uncontended fast-path hit rate "
            f"{row['fast_hit_pct']}% <= 90% ({row['protocol']})")
if doc["bench"] == "lock_protocols":
    assert sweep_rows > 0, f"{path}: uncontended sweep rows missing"
print(f"{path}: OK ({len(doc['rows'])} rows)")
EOF
  done
  # Refresh the checked-in result snapshots: BENCH_*.json at the repo
  # root (the headline artifacts) and a copy under bench/results/.
  mkdir -p bench/results
  for name in multi_user lock_protocols; do
    cp "$JSON_DIR/BENCH_$name.json" "BENCH_$name.json"
    cp "$JSON_DIR/BENCH_$name.json" "bench/results/BENCH_$name.json"
  done
  echo "bench tier passed (BENCH_*.json refreshed at repo root and bench/results/)"
else
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure
fi
