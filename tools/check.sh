#!/usr/bin/env sh
# Tier-1 check: configure, build, run the full test suite.
#
#   tools/check.sh                      # plain RelWithDebInfo build
#   DBPS_SANITIZE=thread tools/check.sh # TSan build (covers src/server/)
#   DBPS_SANITIZE=address tools/check.sh
#   DBPS_TIER=chaos tools/check.sh      # fault-injection tier: runs only the
#                                       # failpoint/fault/chaos suites, then a
#                                       # fixed-seed chaos smoke of dbps_run
#                                       # (combine with DBPS_SANITIZE=thread
#                                       # for the full robustness gate)
#   DBPS_TIER=bench tools/check.sh      # bench smoke tier: runs the
#                                       # JSON-emitting benches at 2 threads,
#                                       # fails if BENCH_*.json is missing or
#                                       # malformed or if the lock manager's
#                                       # CAS fast path never fired on the
#                                       # uncontended sweep, then refreshes
#                                       # bench/results/ (canonical) and the
#                                       # repo-root copies from it in one place
#   DBPS_TIER=net tools/check.sh        # network tier: wire/server/group-
#                                       # commit/net-chaos suites, then a
#                                       # loopback smoke (server + 64
#                                       # pipelined connections, replay-
#                                       # validated) gating open-loop
#                                       # p99 < 50ms at the smoke rate
#   DBPS_TIER=recovery tools/check.sh   # crash-recovery tier: WAL framing,
#                                       # recovery, journal-feed and fuzz
#                                       # suites, the 32-trial seeded
#                                       # kill-and-recover chaos matrix plus
#                                       # the real fork/kill -9 suite, a
#                                       # dbps_run crash/--recover smoke
#                                       # whose journal is then consistency-
#                                       # audited offline, and bench_recovery
#                                       # --smoke with its
#                                       # BENCH_recovery.json validated
#   DBPS_TIER=matcher tools/check.sh    # matcher-equivalence tier: the
#                                       # partitioned-matcher suites (value-
#                                       # hash splitting, rule re-homing,
#                                       # concurrent-reader stress) plus the
#                                       # differential suite that replays
#                                       # every chaos/workload family with
#                                       # splitting + re-homing + match/
#                                       # commit pipelining armed, byte-
#                                       # comparing journals against the
#                                       # serial engine
#   DBPS_TIER=audit tools/check.sh      # consistency-audit tier: the
#                                       # auditor unit suite, the mutation
#                                       # harness (every injected violation
#                                       # class must be flagged at the exact
#                                       # offending seq), the adversarial
#                                       # workload families, and an
#                                       # end-to-end journaled run audited
#                                       # via dbps_run --audit + dbps_audit
#
# DBPS_CHAOS_TRIALS=N scales every chaos/audit suite's trial counts N-fold
# (soak runs use 10-100); DBPS_CHAOS_SEED shifts the seed space so each
# soak explores fresh schedules.
#
# The build directory is build/ for plain runs and build-<sanitizer>/
# for sanitizer runs, so they never poison each other's caches.
set -eu

cd "$(dirname "$0")/.."

SANITIZE="${DBPS_SANITIZE:-}"
TIER="${DBPS_TIER:-}"
if [ -n "$SANITIZE" ]; then
  BUILD_DIR="build-$SANITIZE"
else
  BUILD_DIR="build"
fi

cmake -B "$BUILD_DIR" -S . -DDBPS_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"

if [ "$TIER" = "chaos" ]; then
  # Robustness tier: the failpoint unit tests, the engine fault-injection
  # suite, and the seeded chaos trials (see docs/ROBUSTNESS.md).
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure \
    -R 'Failpoint|FaultInjection|Chaos|chaos|WorkloadFamilies'
  # Deterministic end-to-end smoke: a multi-session server run with the
  # chaos profile armed must still replay-validate AND consistency-audit
  # its commit log.
  for seed in 11 23 47; do
    "$BUILD_DIR/tools/dbps_run" --engine=parallel --workers=4 \
      --sessions=3 --client-ops=6 --chaos-seed="$seed" --fail-rate=0.05 \
      --validate --audit --quiet examples/programs/server_inbox.dbps
  done
  echo "chaos tier passed"
elif [ "$TIER" = "bench" ]; then
  # Bench smoke tier: the JSON-emitting benches at 2 threads. The point
  # is not performance numbers but that the binaries run end-to-end and
  # emit well-formed BENCH_*.json artifacts (see bench/report.h).
  JSON_DIR="$BUILD_DIR/bench-json"
  rm -rf "$JSON_DIR"
  mkdir -p "$JSON_DIR"
  DBPS_BENCH_THREADS=2 DBPS_BENCH_JSON_DIR="$JSON_DIR" \
    "$BUILD_DIR/bench/bench_multi_user"
  DBPS_BENCH_THREADS=2 DBPS_BENCH_JSON_DIR="$JSON_DIR" \
    "$BUILD_DIR/bench/bench_lock_protocols" --benchmark_filter='^$'
  DBPS_BENCH_THREADS=2 DBPS_BENCH_JSON_DIR="$JSON_DIR" \
    "$BUILD_DIR/bench/bench_net" --smoke
  for name in multi_user lock_protocols net; do
    python3 - "$JSON_DIR/BENCH_$name.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["bench"], path
assert doc["rows"], f"{path}: no rows"
keys = ("workload", "threads", "protocol", "wall_ms", "aborts",
        "committed", "fast_path_grants", "fast_hit_pct",
        "batched_commits", "p50_ms", "p95_ms", "p99_ms")
sweep_rows = 0
for row in doc["rows"]:
    for key in keys:
        assert key in row, f"{path}: row missing {key}"
    if row["workload"] == "uncontended_sweep":
        sweep_rows += 1
        # The uncontended sweep is the fast path's home turf: zero
        # grants there means the CAS fast path is broken or disabled.
        assert row["fast_path_grants"] > 0, (
            f"{path}: fast path never fired on uncontended sweep "
            f"({row['protocol']})")
        assert row["fast_hit_pct"] > 90.0, (
            f"{path}: uncontended fast-path hit rate "
            f"{row['fast_hit_pct']}% <= 90% ({row['protocol']})")
if doc["bench"] == "lock_protocols":
    assert sweep_rows > 0, f"{path}: uncontended sweep rows missing"
if doc["bench"] == "multi_user":
    # The skew sweep is the acceptance gate for value-hash splitting:
    # all three configurations must report, the dumps already byte-
    # compared inside the bench, and the split matcher must be at least
    # as fast as the serial reference on the single-hot-relation
    # workload (the bench itself enforces the stricter >= 1.3x bar
    # against the unsplit partitioned matcher).
    skew = {r["protocol"]: r for r in doc["rows"]
            if r["workload"] == "match_skew"}
    for proto in ("serial", "partitioned", "split"):
        assert proto in skew, f"{path}: match_skew row '{proto}' missing"
    assert skew["split"]["wall_ms"] <= skew["serial"]["wall_ms"], (
        f"{path}: split matcher ({skew['split']['wall_ms']}ms) slower "
        f"than serial ({skew['serial']['wall_ms']}ms) on skew workload")
if doc["bench"] in ("multi_user", "net"):
    # These benches record per-transaction latencies; percentiles must
    # be populated and ordered.
    for row in doc["rows"]:
        assert row["p50_ms"] > 0, f"{path}: p50 missing"
        assert row["p50_ms"] <= row["p95_ms"] <= row["p99_ms"], (
            f"{path}: percentiles out of order")
print(f"{path}: OK ({len(doc['rows'])} rows)")
EOF
  done
  # Refresh the checked-in snapshots: bench/results/ is canonical; the
  # repo-root copies are derived from it HERE and nowhere else (keeping
  # the two locations from drifting apart).
  mkdir -p bench/results
  cp "$JSON_DIR"/BENCH_*.json bench/results/
  for f in bench/results/BENCH_*.json; do
    cp "$f" "$(basename "$f")"
  done
  echo "bench tier passed (bench/results/ refreshed; root copies derived)"
elif [ "$TIER" = "net" ]; then
  # Network tier: the wire-protocol, socket-server, group-commit, and
  # network-chaos suites, then a loopback smoke — epoll server + 64
  # pipelined connections whose journal is replay-validated, with the
  # open-loop p99 < 50ms gate enforced inside bench_net --smoke.
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure \
    -R 'Wire|NetServer|GroupCommit|NetChaos'
  DBPS_BENCH_THREADS=2 "$BUILD_DIR/bench/bench_net" --smoke
  echo "net tier passed"
elif [ "$TIER" = "recovery" ]; then
  # Crash-recovery tier: WAL framing + recovery + durability-edge suites,
  # the seeded kill-and-recover chaos matrix (32 trials, both fsync modes
  # and crash shapes) and the real fork/kill -9 suite.
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure \
    -R 'Wal|JournalFuzz|JournalFeed|Recovery|KillRecover|GroupCommit'
  # End-to-end restart smoke: run with a WAL + checkpoints, then restart
  # from the same journal directory with --recover; both runs must
  # replay-validate.
  JDIR="$BUILD_DIR/recovery-smoke"
  rm -rf "$JDIR"
  mkdir -p "$JDIR"
  "$BUILD_DIR/tools/dbps_run" --engine=parallel --workers=4 --sessions=3 \
    --client-ops=6 --journal-dir="$JDIR" --group-commit \
    --checkpoint-every=8 --validate --quiet \
    examples/programs/server_inbox.dbps
  "$BUILD_DIR/tools/dbps_run" --engine=parallel --workers=4 \
    --journal-dir="$JDIR" --recover --validate --quiet \
    examples/programs/server_inbox.dbps
  # The surviving journal — checkpoints, both runs' commits — must pass
  # the offline consistency audit with none of the engine's apply code.
  "$BUILD_DIR/tools/dbps_audit" "$JDIR"
  # Recovery-time bench smoke; its JSON artifact is validated and then
  # snapshotted (bench/results/ canonical, root copy derived) — this
  # bench is owned by the recovery tier, not the bench tier.
  JSON_DIR="$BUILD_DIR/bench-json"
  mkdir -p "$JSON_DIR"
  DBPS_BENCH_JSON_DIR="$JSON_DIR" "$BUILD_DIR/bench/bench_recovery" --smoke
  python3 - "$JSON_DIR/BENCH_recovery.json" <<'EOF'
import json, sys
path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
assert doc["bench"] == "recovery", path
assert doc["rows"], f"{path}: no rows"
keys = ("workload", "threads", "protocol", "wall_ms", "aborts",
        "committed", "fast_path_grants", "fast_hit_pct",
        "batched_commits", "p50_ms", "p95_ms", "p99_ms")
protocols = set()
for row in doc["rows"]:
    for key in keys:
        assert key in row, f"{path}: row missing {key}"
    assert row["committed"] > 0, f"{path}: empty journal row"
    protocols.add(row["protocol"])
    if row["protocol"] == "checkpointed":
        assert row["batched_commits"] > 0, (
            f"{path}: checkpointed row wrote no checkpoints")
assert {"replay_only", "checkpointed"} <= protocols, (
    f"{path}: need both replay_only and checkpointed rows")
print(f"{path}: OK ({len(doc['rows'])} rows)")
EOF
  mkdir -p bench/results
  cp "$JSON_DIR/BENCH_recovery.json" bench/results/
  cp bench/results/BENCH_recovery.json BENCH_recovery.json
  echo "recovery tier passed"
elif [ "$TIER" = "matcher" ]; then
  # Matcher-equivalence tier: partitioned-matcher unit + stress suites
  # and the engine-level differential suite (serial vs partitioned with
  # skew adaptation armed, byte-identical journals). Seed-shifted via
  # DBPS_CHAOS_SEED like the other soakable tiers.
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure \
    -R 'Partitioned|MatcherDifferential|SkewAdaptive|AdaptiveBatch'
  echo "matcher tier passed"
elif [ "$TIER" = "audit" ]; then
  # Consistency-audit tier: the auditor's own suites (unit, mutation
  # harness, adversarial workload families) plus the cli_audit smoke.
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure \
    -R 'Auditor|Mutation|WorkloadFamilies|cli_audit'
  # End-to-end: a journaled multi-user run must audit clean both from the
  # engine's in-memory log (dbps_run --audit audits log + WAL) and via
  # the standalone tool over the durable journal directory.
  JDIR="$BUILD_DIR/audit-smoke"
  rm -rf "$JDIR"
  mkdir -p "$JDIR"
  "$BUILD_DIR/tools/dbps_run" --engine=parallel --workers=4 --sessions=3 \
    --client-ops=6 --journal-dir="$JDIR" --audit --validate --quiet \
    examples/programs/server_inbox.dbps
  "$BUILD_DIR/tools/dbps_audit" "$JDIR"
  echo "audit tier passed"
else
  ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure
fi
