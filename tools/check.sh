#!/usr/bin/env sh
# Tier-1 check: configure, build, run the full test suite.
#
#   tools/check.sh                      # plain RelWithDebInfo build
#   DBPS_SANITIZE=thread tools/check.sh # TSan build (covers src/server/)
#   DBPS_SANITIZE=address tools/check.sh
#
# The build directory is build/ for plain runs and build-<sanitizer>/
# for sanitizer runs, so they never poison each other's caches.
set -eu

cd "$(dirname "$0")/.."

SANITIZE="${DBPS_SANITIZE:-}"
if [ -n "$SANITIZE" ]; then
  BUILD_DIR="build-$SANITIZE"
else
  BUILD_DIR="build"
fi

cmake -B "$BUILD_DIR" -S . -DDBPS_SANITIZE="$SANITIZE"
cmake --build "$BUILD_DIR" -j "$(nproc 2>/dev/null || echo 4)"
ctest --test-dir "$BUILD_DIR" -j 4 --output-on-failure
