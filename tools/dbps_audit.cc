// dbps_audit — offline commit-log consistency auditor.
//
//   dbps_audit [flags] <journal.wal | journal.txt | journal-dir>
//
// Audits a replayable commit log WITHOUT any of the engine's apply code
// (src/audit/auditor.h): it re-derives conflict-serializability, Rc/Ra/Wa
// semantics, and snapshot visibility windows from the log's own audit
// evidence. Accepts either a framed WAL (lang/wal.h) or a plain-text
// journal; a directory argument is shorthand for DIR/journal.wal (the
// durable journal layout used by --journal-dir runs). The format is
// sniffed from the first byte: text journals open with '(' / ';' /
// whitespace, WAL frames open with a binary length word.
//
// Flags:
//   --require-audit     flag records without audit evidence instead of
//                       tracking them as opaque write-only history
//   --allow-torn-tail   do not flag a non-clean WAL tail (for logs taken
//                       from a crash site before recovery truncated them)
//   --strict-restarts   flag bare victim-ledger resets in TEXT journals
//                       (WAL audits always require checkpoint evidence
//                       before accepting a reset)
//   --max-violations=N  stop collecting after N violations (64)
//   --quiet             print nothing on a clean log
//
// Exit status: 0 = log is consistent, 1 = violations found, 2 = the log
// could not be read or parsed at all.

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "audit/auditor.h"
#include "server/recovery.h"
#include "util/status.h"

namespace {

using namespace dbps;

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--require-audit] [--allow-torn-tail]\n"
               "  [--strict-restarts] [--max-violations=N] [--quiet]\n"
               "  <journal.wal | journal.txt | journal-dir>\n",
               argv0);
  return 2;
}

bool IsDirectory(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

/// A text journal's first significant byte is part of the s-expression
/// grammar; a WAL frame's first byte is the low byte of a little-endian
/// length word (frames are tens of bytes at minimum, so printable values
/// are possible but '(' / ';' / whitespace never start a sane frame of
/// that size — journal lines are always longer than 0x28 bytes would
/// imply anyway, and real logs start with '(delta' or a comment).
bool LooksLikeText(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char first = '\0';
  if (!in.get(first)) return true;  // empty file: audit as (empty) text
  return first == '(' || first == ';' || first == '\n' || first == ' ' ||
         first == '\t' || first == '\r';
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  AuditOptions options;
  bool quiet = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--require-audit") {
      options.require_audit = true;
    } else if (arg == "--allow-torn-tail") {
      options.flag_tail = false;
    } else if (arg == "--strict-restarts") {
      options.strict_restarts = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg.rfind("--max-violations=", 0) == 0) {
      options.max_violations =
          std::stoul(arg.substr(sizeof("--max-violations=") - 1));
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", arg.c_str());
      return Usage(argv[0]);
    } else if (path.empty()) {
      path = arg;
    } else {
      std::fprintf(stderr, "error: multiple log paths given\n");
      return Usage(argv[0]);
    }
  }
  if (path.empty()) return Usage(argv[0]);
  if (IsDirectory(path)) path = RecoveryManager::JournalFileInDir(path);

  AuditReport report;
  if (LooksLikeText(path)) {
    auto text = ReadFile(path);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 2;
    }
    report = ConsistencyAuditor::AuditJournalText(text.ValueOrDie(), options);
  } else {
    auto report_or = ConsistencyAuditor::AuditWalFile(path, options);
    if (!report_or.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   report_or.status().ToString().c_str());
      return 2;
    }
    report = report_or.ValueOrDie();
  }

  if (!quiet || !report.clean()) {
    std::printf("%s: %s\n", path.c_str(), report.ToString().c_str());
  }
  return report.clean() ? 0 : 1;
}
