// dbps_client — command-line front end for the binary wire protocol.
//
// Client commands (talk to a running server):
//
//   dbps_client --port=P ping                     liveness round trip
//   dbps_client --port=P read RELATION            print rows, one per line
//   dbps_client --port=P query "(order ^id <x>)"  print query rows
//   dbps_client --port=P txn LINE...              one transaction: Begin,
//                                                 Write each journal line,
//                                                 Commit; prints the commit
//                                                 sequence number
//   dbps_client --port=P txn -                    journal lines from stdin
//   dbps_client --port=P checkpoint               admin: schedule a journal
//                                                 snapshot checkpoint at the
//                                                 next commit batch
//
// Server command (host a program over the wire):
//
//   dbps_client serve PROGRAM.dbps [--port=P] [--workers=N]
//               [--journal=PATH] [--journal-dir=DIR] [--recover]
//               [--group-commit] [--checkpoint-every=N]
//
// serve prints "listening on <port>" and runs until stdin reaches EOF
// (so `dbps_client serve p.dbps < /dev/null` exits after draining).
// With --journal the commit log is written durably (fresh file), acked
// after fsync; --group-commit amortizes fsyncs over commit batches.
// --journal-dir keeps a checksummed WAL at DIR/journal.wal; adding
// --recover first rebuilds the database from that WAL (checkpoint
// restore + replay, torn tail truncated, stats printed) and then appends
// to it — the server restarts exactly where it died.
//
// Journal lines use the lang/journal.h grammar, e.g.
//   (delta (make order 7) (modify 3 (id 9)) (delete 4))

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dbps.h"

namespace {

using namespace dbps;

int Usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--host=H] [--port=P] [--name=NAME] COMMAND [ARGS...]\n"
      "client commands: ping | read RELATION | query LHS | txn LINE...|-\n"
      "                 | checkpoint\n"
      "server command:  serve PROGRAM.dbps [--port=P] [--workers=N]\n"
      "                 [--journal=PATH] [--journal-dir=DIR] [--recover]\n"
      "                 [--group-commit] [--checkpoint-every=N]\n",
      argv0);
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name, std::string* value) {
  const std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

struct Options {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  std::string name = "dbps-client";
  size_t workers = 2;
  std::string journal_path;
  std::string journal_dir;
  bool recover = false;
  bool group_commit = false;
  size_t checkpoint_every = 0;
  std::string command;
  std::vector<std::string> args;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

int Serve(const Options& options) {
  if (options.args.empty()) {
    std::fprintf(stderr, "serve: missing PROGRAM.dbps\n");
    return 2;
  }
  std::ifstream in(options.args[0]);
  if (!in) {
    std::fprintf(stderr, "serve: cannot read %s\n", options.args[0].c_str());
    return 1;
  }
  std::stringstream source;
  source << in.rdbuf();

  WorkingMemory wm;
  auto rules_or = LoadProgram(source.str(), &wm);
  if (!rules_or.ok()) return Fail(rules_or.status());
  auto rules = rules_or.ValueOrDie();

  JournalFeed feed;
  ServerOptions server_options;
  uint64_t start_seq = 0;
  const bool durable = !options.journal_path.empty() ||
                       !options.journal_dir.empty() || options.group_commit;
  if (durable) {
    DurabilityOptions durability;
    durability.path = options.journal_path;
    if (!options.journal_dir.empty()) {
      ::mkdir(options.journal_dir.c_str(), 0755);  // EEXIST is fine
      durability.path =
          RecoveryManager::JournalFileInDir(options.journal_dir);
    }
    if (options.recover) {
      // Rebuild the database from the WAL before the engine starts, then
      // append — the restarted server resumes exactly where it died.
      RecoveryManager recovery(durability.path);
      auto stats_or = recovery.Recover(&wm);
      if (!stats_or.ok()) return Fail(stats_or.status());
      start_seq = stats_or.ValueOrDie().next_seq;
      std::printf("recovery: %s\n",
                  stats_or.ValueOrDie().ToString().c_str());
    }
    durability.open_mode = options.recover ? JournalOpenMode::kAppend
                                           : JournalOpenMode::kTruncate;
    durability.group_commit = options.group_commit;
    durability.start_seq = start_seq;
    durability.checkpoint_every = options.checkpoint_every;
    Status st = feed.EnableDurability(durability);
    if (st.ok()) st = feed.EnableCheckpoints(&wm);
    if (!st.ok()) return Fail(st);
    server_options.durable_feed = &feed;
  }
  SessionManager manager(&wm, server_options);
  ParallelEngineOptions engine_options;
  engine_options.num_workers = options.workers;
  engine_options.external_source = &manager;
  engine_options.start_seq = start_seq;
  if (server_options.durable_feed != nullptr) {
    engine_options.base.observer = feed.MakeObserver();
  }
  ParallelEngine engine(&wm, rules, engine_options);
  manager.BindEngine(&engine);
  StatusOr<RunResult> result{Status::Internal("engine not run")};
  std::thread engine_thread([&] { result = engine.Run(); });

  net::NetServerOptions net_options;
  net_options.port = options.port;
  net::NetServer server(&manager, net_options);
  Status st = server.Start();
  if (!st.ok()) {
    manager.Close();
    engine_thread.join();
    return Fail(st);
  }
  std::printf("listening on %u\n", server.port());
  std::fflush(stdout);

  // Serve until stdin closes — works for both interactive use (^D) and
  // scripted runs (`< /dev/null` exits once the engine drains).
  std::string line;
  while (std::getline(std::cin, line)) {
  }
  server.Stop();
  manager.Close();
  engine_thread.join();
  if (!result.ok()) return Fail(result.status());
  const net::NetStats stats = server.GetStats();
  std::printf(
      "served %llu connections, %llu frames in, %llu frames out, "
      "%llu commits, %llu firings\n",
      (unsigned long long)stats.connections_accepted,
      (unsigned long long)stats.frames_in,
      (unsigned long long)stats.frames_out,
      (unsigned long long)result.ValueOrDie().stats.client_commits,
      (unsigned long long)result.ValueOrDie().stats.firings);
  return 0;
}

int RunClient(const Options& options) {
  if (options.port == 0) {
    std::fprintf(stderr, "%s: --port is required\n",
                 options.command.c_str());
    return 2;
  }
  auto client_or =
      net::DbpsClient::Connect(options.host, options.port, options.name);
  if (!client_or.ok()) return Fail(client_or.status());
  auto client = std::move(client_or).ValueOrDie();

  if (options.command == "ping") {
    Status st = client->Ping();
    if (!st.ok()) return Fail(st);
    std::printf("pong (session %llu)\n",
                (unsigned long long)client->session_id());
  } else if (options.command == "checkpoint") {
    Status st = client->Checkpoint();
    if (!st.ok()) return Fail(st);
    std::printf("checkpoint scheduled\n");
  } else if (options.command == "read" || options.command == "query") {
    if (options.args.size() != 1) {
      std::fprintf(stderr, "%s: exactly one argument expected\n",
                   options.command.c_str());
      return 2;
    }
    // Reads run inside a transaction; wrap the one-shot in a read-only
    // Begin/Abort pair.
    Status st = client->Begin();
    if (!st.ok()) return Fail(st);
    auto rows_or = options.command == "read"
                       ? client->Read(options.args[0])
                       : client->Query(options.args[0]);
    (void)client->Abort();
    if (!rows_or.ok()) return Fail(rows_or.status());
    for (const std::string& row : rows_or.ValueOrDie()) {
      std::printf("%s\n", row.c_str());
    }
  } else if (options.command == "txn") {
    std::vector<std::string> lines = options.args;
    if (lines.size() == 1 && lines[0] == "-") {
      lines.clear();
      std::string line;
      while (std::getline(std::cin, line)) {
        if (!line.empty()) lines.push_back(line);
      }
    }
    if (lines.empty()) {
      std::fprintf(stderr, "txn: no journal lines\n");
      return 2;
    }
    Status st = client->Begin();
    if (!st.ok()) return Fail(st);
    for (const std::string& line : lines) {
      st = client->WriteLine(line);
      if (!st.ok()) {
        (void)client->Abort();
        return Fail(st);
      }
    }
    auto seq_or = client->Commit();
    if (!seq_or.ok()) return Fail(seq_or.status());
    std::printf("committed seq %llu\n",
                (unsigned long long)seq_or.ValueOrDie());
  } else {
    return 2;
  }
  (void)client->Goodbye();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  std::string value;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (ParseFlag(arg, "host", &value)) {
      options.host = value;
    } else if (ParseFlag(arg, "port", &value)) {
      options.port = static_cast<uint16_t>(std::stoul(value));
    } else if (ParseFlag(arg, "name", &value)) {
      options.name = value;
    } else if (ParseFlag(arg, "workers", &value)) {
      options.workers = std::stoul(value);
    } else if (ParseFlag(arg, "journal", &value)) {
      options.journal_path = value;
    } else if (ParseFlag(arg, "journal-dir", &value)) {
      options.journal_dir = value;
    } else if (ParseFlag(arg, "checkpoint-every", &value)) {
      options.checkpoint_every = std::stoul(value);
    } else if (arg == "--recover") {
      options.recover = true;
    } else if (arg == "--group-commit") {
      options.group_commit = true;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "unknown flag %s\n", arg.c_str());
      return Usage(argv[0]);
    } else if (options.command.empty()) {
      options.command = arg;
    } else {
      options.args.push_back(arg);
    }
  }
  if (options.command.empty()) return Usage(argv[0]);
  if (options.command == "serve") return Serve(options);
  if (options.command == "ping" || options.command == "read" ||
      options.command == "query" || options.command == "txn" ||
      options.command == "checkpoint") {
    return RunClient(options);
  }
  std::fprintf(stderr, "unknown command %s\n", options.command.c_str());
  return Usage(argv[0]);
}
