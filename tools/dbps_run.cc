// dbps_run — command-line driver for the dbps engine.
//
//   dbps_run [flags] <program.dbps>
//
// Loads a rule-language program (relations, rules, facts), runs it on the
// selected engine, and reports. Flags:
//
//   --engine=single|parallel|static   interpreter (default: single)
//   --workers=N                       parallel/static worker count (4)
//   --lock-shards=N                   lock-table shard count (parallel;
//                                     default: hardware concurrency
//                                     rounded up to a power of two, min 8)
//   --commit-batch=N                  max commits the sequencer head folds
//                                     into one ordered batch (8; 1
//                                     disables batching)
//   --protocol=2pl|rcrawa             lock protocol (rcrawa)
//   --abort-policy=abort|revalidate   Rc–Wa settlement policy (abort)
//   --deadlock=detect|wound-wait|no-wait   deadlock handling (detect)
//   --strategy=priority|lex|mea|fifo|random conflict resolution (priority)
//   --seed=N                          PRNG seed (42)
//   --max-firings=N                   safety cap (100000)
//   --matcher=rete|naive|treat        match algorithm (rete)
//   --cost-model=sleep|spin           how :cost occupies a processor
//   --trace                           print every committed firing
//   --validate                        replay-check the commit log
//   --audit                           run the offline consistency auditor
//                                     (src/audit/) over the commit log —
//                                     and, with --journal-dir, over the
//                                     durable WAL file too
//   --dump-final                      print the final working memory
//   --snapshot-out=FILE               save final WM as a loadable program
//   --query=LHS                       evaluate a query against the final
//                                     WM and print the rows
//   --journal-out=FILE                write the committed deltas as a
//                                     replayable journal
//   --sessions=N                      serve N concurrent client sessions
//                                     (parallel engine only); each session
//                                     submits external transactions that
//                                     interleave with rule firings
//   --client-ops=M                    transactions per session (16)
//   --client-relation=NAME            relation the clients insert into
//                                     (default: first declared relation)
//   --chaos-seed=N                    arm the failpoint chaos profile
//                                     (util/failpoint.h) seeded with N;
//                                     the run injects deterministic faults
//   --fail-rate=P                     base failpoint probability for
//                                     --chaos-seed (0.05)
//   --journal-dir=DIR                 keep a durable, checksummed WAL at
//                                     DIR/journal.wal (parallel engine);
//                                     commits are fsynced before being
//                                     acknowledged
//   --recover                         rebuild working memory from the WAL
//                                     in --journal-dir before running
//                                     (checkpoint restore + delta replay;
//                                     a torn tail is truncated), then
//                                     append to it; without --recover the
//                                     run starts a fresh log
//   --group-commit                    one fsync per commit batch instead
//                                     of one per commit
//   --checkpoint-every=N              write a snapshot checkpoint record
//                                     into the WAL every N commits
//   --match-partitions=N              partition the matcher by relation
//                                     hash into N partitions and propagate
//                                     commit batches morsel-parallel
//                                     (parallel engine; 0 = serial match)
//   --match-workers=N                 morsel workers draining match
//                                     partitions (4; 1 = serial ablation)
//   --match-split                     split a hot partition's alpha
//                                     memories by value-hash of the
//                                     first-CE tested attribute into
//                                     sub-partitions when skew persists
//   --match-rehome                    rebuild the rule->partition homing
//                                     map at a pinned snapshot when the
//                                     skew histogram saturates bin 9
//   --match-pipeline                  propagate committed batches on a
//                                     dedicated thread, overlapping match
//                                     with the next batch's lock phase
//   --adaptive-batch                  self-tune the commit batch limit
//                                     from observed saturation and
//                                     sequencer stall
//   --audit-every=N                   emit full audit evidence only on
//                                     every Nth commit (1 = every commit);
//                                     the auditor treats unaudited lines
//                                     as order-only evidence
//   --quiet                           suppress the summary line

#include <sys/stat.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "dbps.h"
#include "engine/busy_work.h"

namespace {

using namespace dbps;

struct Flags {
  std::string engine = "single";
  size_t workers = 4;
  size_t lock_shards = DefaultNumLockShards();
  size_t commit_batch = 8;
  LockProtocol protocol = LockProtocol::kRcRaWa;
  AbortPolicy abort_policy = AbortPolicy::kAbort;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
  ConflictResolution strategy = ConflictResolution::kPriority;
  uint64_t seed = 42;
  uint64_t max_firings = 100000;
  MatcherKind matcher = MatcherKind::kRete;
  CostModel cost_model = CostModel::kSleep;
  bool trace = false;
  bool validate = false;
  bool audit = false;
  bool dump_final = false;
  bool quiet = false;
  size_t sessions = 0;
  uint64_t client_ops = 16;
  std::string client_relation;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  double fail_rate = 0.05;
  size_t match_partitions = 0;
  size_t match_workers = 4;
  bool match_split = false;
  bool match_rehome = false;
  bool match_pipeline = false;
  bool adaptive_batch = false;
  uint64_t audit_every = 1;
  std::string journal_dir;
  bool recover = false;
  bool group_commit = false;
  size_t checkpoint_every = 0;
  std::string snapshot_out;
  std::string journal_out;
  std::string query;
  std::string program_path;
};

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine=single|parallel|static] [--workers=N]\n"
               "  [--lock-shards=N] [--commit-batch=N]\n"
               "  [--protocol=2pl|rcrawa] [--abort-policy=abort|revalidate]\n"
               "  [--deadlock=detect|wound-wait|no-wait]\n"
               "  [--strategy=priority|lex|mea|fifo|random] [--seed=N]\n"
               "  [--max-firings=N] [--matcher=rete|naive|treat]\n"
               "  [--cost-model=sleep|spin] [--trace] [--validate]\n"
               "  [--audit]\n"
               "  [--dump-final] [--snapshot-out=FILE] [--query=LHS]\n"
               "  [--journal-out=FILE]\n"
               "  [--sessions=N] [--client-ops=M] [--client-relation=NAME]\n"
               "  [--chaos-seed=N] [--fail-rate=P] [--quiet]\n"
               "  [--journal-dir=DIR] [--recover] [--group-commit]\n"
               "  [--checkpoint-every=N]\n"
               "  [--match-partitions=N] [--match-workers=N]\n"
               "  [--match-split] [--match-rehome] [--match-pipeline]\n"
               "  [--adaptive-batch] [--audit-every=N]\n"
               "  <program.dbps>\n",
               argv0);
  return 2;
}

bool ParseFlag(const std::string& arg, const char* name,
               std::string* value) {
  std::string prefix = std::string("--") + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

StatusOr<Flags> ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    std::string value;
    if (arg == "--trace") {
      flags.trace = true;
    } else if (arg == "--validate") {
      flags.validate = true;
    } else if (arg == "--audit") {
      flags.audit = true;
    } else if (arg == "--dump-final") {
      flags.dump_final = true;
    } else if (arg == "--quiet") {
      flags.quiet = true;
    } else if (ParseFlag(arg, "engine", &value)) {
      if (value != "single" && value != "parallel" && value != "static") {
        return Status::InvalidArgument("unknown engine '" + value + "'");
      }
      flags.engine = value;
    } else if (ParseFlag(arg, "workers", &value)) {
      flags.workers = std::stoul(value);
    } else if (ParseFlag(arg, "lock-shards", &value)) {
      flags.lock_shards = std::stoul(value);
    } else if (ParseFlag(arg, "commit-batch", &value)) {
      flags.commit_batch = std::stoul(value);
      if (flags.commit_batch == 0) {
        return Status::InvalidArgument("--commit-batch must be >= 1");
      }
    } else if (ParseFlag(arg, "protocol", &value)) {
      if (value == "2pl") {
        flags.protocol = LockProtocol::kTwoPhase;
      } else if (value == "rcrawa") {
        flags.protocol = LockProtocol::kRcRaWa;
      } else {
        return Status::InvalidArgument("unknown protocol '" + value + "'");
      }
    } else if (ParseFlag(arg, "abort-policy", &value)) {
      if (value == "abort") {
        flags.abort_policy = AbortPolicy::kAbort;
      } else if (value == "revalidate") {
        flags.abort_policy = AbortPolicy::kRevalidate;
      } else {
        return Status::InvalidArgument("unknown abort policy '" + value +
                                       "'");
      }
    } else if (ParseFlag(arg, "deadlock", &value)) {
      if (value == "detect") {
        flags.deadlock_policy = DeadlockPolicy::kDetect;
      } else if (value == "wound-wait") {
        flags.deadlock_policy = DeadlockPolicy::kWoundWait;
      } else if (value == "no-wait") {
        flags.deadlock_policy = DeadlockPolicy::kNoWait;
      } else {
        return Status::InvalidArgument("unknown deadlock policy '" +
                                       value + "'");
      }
    } else if (ParseFlag(arg, "strategy", &value)) {
      if (value == "priority") {
        flags.strategy = ConflictResolution::kPriority;
      } else if (value == "lex") {
        flags.strategy = ConflictResolution::kLex;
      } else if (value == "mea") {
        flags.strategy = ConflictResolution::kMea;
      } else if (value == "fifo") {
        flags.strategy = ConflictResolution::kFifo;
      } else if (value == "random") {
        flags.strategy = ConflictResolution::kRandom;
      } else {
        return Status::InvalidArgument("unknown strategy '" + value + "'");
      }
    } else if (ParseFlag(arg, "seed", &value)) {
      flags.seed = std::stoull(value);
    } else if (ParseFlag(arg, "max-firings", &value)) {
      flags.max_firings = std::stoull(value);
    } else if (ParseFlag(arg, "matcher", &value)) {
      if (value == "rete") {
        flags.matcher = MatcherKind::kRete;
      } else if (value == "naive") {
        flags.matcher = MatcherKind::kNaive;
      } else if (value == "treat") {
        flags.matcher = MatcherKind::kTreat;
      } else {
        return Status::InvalidArgument("unknown matcher '" + value + "'");
      }
    } else if (ParseFlag(arg, "cost-model", &value)) {
      if (value == "sleep") {
        flags.cost_model = CostModel::kSleep;
      } else if (value == "spin") {
        flags.cost_model = CostModel::kBusySpin;
      } else {
        return Status::InvalidArgument("unknown cost model '" + value +
                                       "'");
      }
    } else if (ParseFlag(arg, "snapshot-out", &value)) {
      flags.snapshot_out = value;
    } else if (ParseFlag(arg, "query", &value)) {
      flags.query = value;
    } else if (ParseFlag(arg, "journal-out", &value)) {
      flags.journal_out = value;
    } else if (ParseFlag(arg, "sessions", &value)) {
      flags.sessions = std::stoul(value);
    } else if (ParseFlag(arg, "client-ops", &value)) {
      flags.client_ops = std::stoull(value);
    } else if (ParseFlag(arg, "client-relation", &value)) {
      flags.client_relation = value;
    } else if (arg == "--recover") {
      flags.recover = true;
    } else if (arg == "--group-commit") {
      flags.group_commit = true;
    } else if (ParseFlag(arg, "journal-dir", &value)) {
      flags.journal_dir = value;
    } else if (ParseFlag(arg, "checkpoint-every", &value)) {
      flags.checkpoint_every = std::stoul(value);
    } else if (ParseFlag(arg, "chaos-seed", &value)) {
      flags.chaos = true;
      flags.chaos_seed = std::stoull(value);
    } else if (ParseFlag(arg, "fail-rate", &value)) {
      flags.fail_rate = std::stod(value);
      if (flags.fail_rate < 0.0 || flags.fail_rate > 1.0) {
        return Status::InvalidArgument("--fail-rate must be in [0,1]");
      }
    } else if (ParseFlag(arg, "match-partitions", &value)) {
      flags.match_partitions = std::stoul(value);
    } else if (ParseFlag(arg, "match-workers", &value)) {
      flags.match_workers = std::stoul(value);
      if (flags.match_workers == 0) {
        return Status::InvalidArgument("--match-workers must be >= 1");
      }
    } else if (arg == "--match-split") {
      flags.match_split = true;
    } else if (arg == "--match-rehome") {
      flags.match_rehome = true;
    } else if (arg == "--match-pipeline") {
      flags.match_pipeline = true;
    } else if (arg == "--adaptive-batch") {
      flags.adaptive_batch = true;
    } else if (ParseFlag(arg, "audit-every", &value)) {
      flags.audit_every = std::stoull(value);
    } else if (!arg.empty() && arg[0] == '-') {
      return Status::InvalidArgument("unknown flag '" + arg + "'");
    } else if (flags.program_path.empty()) {
      flags.program_path = arg;
    } else {
      return Status::InvalidArgument("multiple program files given");
    }
  }
  if (flags.program_path.empty()) {
    return Status::InvalidArgument("no program file given");
  }
  if (flags.sessions > 0 && flags.engine != "parallel") {
    return Status::InvalidArgument(
        "--sessions requires --engine=parallel");
  }
  if (!flags.journal_dir.empty() && flags.engine != "parallel") {
    return Status::InvalidArgument(
        "--journal-dir requires --engine=parallel");
  }
  if (flags.recover && flags.journal_dir.empty()) {
    return Status::InvalidArgument("--recover requires --journal-dir");
  }
  if ((flags.group_commit || flags.checkpoint_every > 0) &&
      flags.journal_dir.empty()) {
    return Status::InvalidArgument(
        "--group-commit/--checkpoint-every require --journal-dir");
  }
  return flags;
}

/// Default client tuple for `schema`, distinct per (session, op).
std::vector<Value> ClientTuple(const RelationSchema& schema, size_t session,
                               uint64_t op) {
  std::vector<Value> values;
  values.reserve(schema.arity());
  for (const AttrDef& attr : schema.attrs()) {
    switch (attr.type) {
      case AttrType::kFloat:
        values.push_back(Value::Float(static_cast<double>(op)));
        break;
      case AttrType::kSymbol:
        values.push_back(
            Value::Symbol("client-" + std::to_string(session)));
        break;
      case AttrType::kString:
        values.push_back(
            Value::String("session-" + std::to_string(session)));
        break;
      case AttrType::kInt:
      case AttrType::kNumber:
      case AttrType::kAny:
        values.push_back(Value::Int(
            static_cast<int64_t>(session) * 1000000 +
            static_cast<int64_t>(op)));
        break;
    }
  }
  return values;
}

/// Runs the parallel engine as a server: N closed-loop client sessions
/// insert tuples into `target` while rules fire against the same working
/// memory. Returns the engine result once all sessions have drained.
StatusOr<RunResult> ServeSessions(const Flags& flags, WorkingMemory* wm,
                                  RuleSetPtr rules,
                                  ParallelEngineOptions options,
                                  JournalFeed* durable_feed,
                                  ServerStats* server_stats) {
  SymbolId target;
  if (!flags.client_relation.empty()) {
    target = Sym(flags.client_relation);
  } else if (!wm->catalog().relation_names().empty()) {
    target = wm->catalog().relation_names().front();
  } else {
    return Status::InvalidArgument(
        "--sessions needs at least one relation in the program");
  }
  auto schema_or = wm->catalog().GetRelation(target);
  if (!schema_or.ok()) return schema_or.status();
  const RelationSchema& schema = *schema_or.ValueOrDie();

  ServerOptions server_options;
  server_options.durable_feed = durable_feed;  // ack-after-fsync when set
  SessionManager manager(wm, server_options);
  options.external_source = &manager;
  ParallelEngine engine(wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result{Status::Internal("engine not run")};
  std::thread serve([&] { result = engine.Run(); });

  std::atomic<uint64_t> failures{0};
  std::vector<std::thread> clients;
  for (size_t c = 0; c < flags.sessions; ++c) {
    clients.emplace_back([&, c] {
      // Under --chaos-seed the admission layer may inject rejections, so
      // connecting deserves the same bounded retry as the transactions.
      StatusOr<SessionPtr> session_or{Status::Internal("not connected")};
      for (int attempt = 0; attempt < 16; ++attempt) {
        session_or = manager.Connect("cli-" + std::to_string(c));
        if (session_or.ok()) break;
        SleepMicros(200);
      }
      if (!session_or.ok()) {
        failures.fetch_add(flags.client_ops);
        return;
      }
      SessionPtr session = session_or.ValueOrDie();
      for (uint64_t i = 0; i < flags.client_ops; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          Delta delta;
          delta.Create(target, ClientTuple(schema, c, i));
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        if (!st.ok()) failures.fetch_add(1);
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  *server_stats = manager.GetStats();
  if (failures.load() > 0 && !flags.quiet) {
    std::fprintf(stderr, "warning: %llu client transaction(s) never "
                 "committed\n", (unsigned long long)failures.load());
  }
  return result;
}

StatusOr<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int Run(const Flags& flags) {
  auto source = ReadFile(flags.program_path);
  if (!source.ok()) {
    std::fprintf(stderr, "error: %s\n", source.status().ToString().c_str());
    return 1;
  }

  WorkingMemory wm;
  auto rules_or = LoadProgram(source.ValueOrDie(), &wm);
  if (!rules_or.ok()) {
    std::fprintf(stderr, "%s: %s\n", flags.program_path.c_str(),
                 rules_or.status().ToString().c_str());
    return 1;
  }
  RuleSetPtr rules = rules_or.ValueOrDie();

  // Crash recovery runs against the freshly loaded program state, BEFORE
  // anything else observes the working memory: a checkpoint replaces the
  // program's initial facts, a checkpoint-less journal replays onto them.
  JournalFeed feed;
  uint64_t start_seq = 0;
  if (!flags.journal_dir.empty()) {
    ::mkdir(flags.journal_dir.c_str(), 0755);  // EEXIST is fine
    const std::string wal =
        RecoveryManager::JournalFileInDir(flags.journal_dir);
    if (flags.recover) {
      RecoveryManager recovery(wal);
      auto stats_or = recovery.Recover(&wm);
      if (!stats_or.ok()) {
        std::fprintf(stderr, "recovery failed: %s\n",
                     stats_or.status().ToString().c_str());
        return 1;
      }
      const RecoveryStats& rstats = stats_or.ValueOrDie();
      start_seq = rstats.next_seq;
      if (!flags.quiet) {
        std::printf("recovery: %s\n", rstats.ToString().c_str());
      }
    }
    DurabilityOptions durability;
    durability.path = wal;
    durability.open_mode = flags.recover ? JournalOpenMode::kAppend
                                         : JournalOpenMode::kTruncate;
    durability.group_commit = flags.group_commit;
    durability.start_seq = start_seq;
    durability.checkpoint_every = flags.checkpoint_every;
    Status st = feed.EnableDurability(durability);
    if (st.ok()) st = feed.EnableCheckpoints(&wm);
    if (!st.ok()) {
      std::fprintf(stderr, "journal setup failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
  }

  std::unique_ptr<WorkingMemory> pristine;
  if (flags.validate) pristine = wm.Clone();

  if (flags.chaos) {
    ApplyChaosProfile(flags.fail_rate, flags.chaos_seed);
  }

  EngineOptions base;
  base.strategy = flags.strategy;
  base.matcher = flags.matcher;
  base.seed = flags.seed;
  base.max_firings = flags.max_firings;
  base.cost_model = flags.cost_model;

  StatusOr<RunResult> result_or{Status::Internal("engine not run")};
  ServerStats server_stats;
  if (flags.engine == "single") {
    SingleThreadEngine engine(&wm, rules, base);
    result_or = engine.Run();
  } else if (flags.engine == "parallel") {
    ParallelEngineOptions options;
    options.base = base;
    options.num_workers = flags.workers;
    options.num_lock_shards = flags.lock_shards;
    options.commit_batch_limit = flags.commit_batch;
    options.protocol = flags.protocol;
    options.abort_policy = flags.abort_policy;
    options.deadlock_policy = flags.deadlock_policy;
    options.start_seq = start_seq;
    options.num_match_partitions = flags.match_partitions;
    options.match_workers = flags.match_workers;
    options.match_split = flags.match_split;
    options.match_rehome = flags.match_rehome;
    options.match_pipeline = flags.match_pipeline;
    options.adaptive_batch_limit = flags.adaptive_batch;
    options.audit_every = flags.audit_every;
    JournalFeed* durable = nullptr;
    if (!flags.journal_dir.empty()) {
      durable = &feed;
      options.base.observer = feed.MakeObserver(base.observer);
    }
    if (flags.sessions > 0) {
      result_or =
          ServeSessions(flags, &wm, rules, options, durable, &server_stats);
    } else {
      ParallelEngine engine(&wm, rules, options);
      result_or = engine.Run();
    }
  } else {
    StaticPartitionOptions options;
    options.base = base;
    options.num_workers = flags.workers;
    StaticPartitionEngine engine(&wm, rules, options);
    result_or = engine.Run();
  }
  uint64_t chaos_fires = 0;
  if (flags.chaos) {
    chaos_fires = FailpointRegistry::Instance().total_fires();
    FailpointRegistry::Instance().DisableAll();
  }
  if (!result_or.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const RunResult& result = result_or.ValueOrDie();

  if (flags.trace) {
    for (const auto& record : result.log) {
      std::printf("%6llu  %-24s %s\n", (unsigned long long)record.seq,
                  record.key.rule_name.c_str(),
                  record.delta.ToString().c_str());
    }
  }
  if (!flags.quiet) {
    std::printf("%s engine: %s\n", flags.engine.c_str(),
                result.stats.ToString().c_str());
    if (flags.sessions > 0) {
      std::printf(
          "sessions: admitted=%llu peak=%zu txns=%llu commits=%llu "
          "aborts=%llu (rc victims %llu)\n",
          (unsigned long long)server_stats.sessions_admitted,
          server_stats.peak_sessions,
          (unsigned long long)server_stats.closed_sessions.begins,
          (unsigned long long)server_stats.closed_sessions.commits,
          (unsigned long long)server_stats.closed_sessions.aborts,
          (unsigned long long)server_stats.closed_sessions.rc_victim_aborts);
    }
    if (flags.chaos) {
      std::printf("chaos: seed=%llu rate=%.3f failpoint fires=%llu\n",
                  (unsigned long long)flags.chaos_seed, flags.fail_rate,
                  (unsigned long long)chaos_fires);
    }
    if (!flags.journal_dir.empty()) {
      const DurabilityStats dstats = feed.durability();
      std::printf(
          "journal: durable_seq=%llu fsyncs=%llu records=%llu "
          "mean_group=%.2f checkpoints=%llu bytes=%llu failures=%llu\n",
          (unsigned long long)feed.durable_seq(),
          (unsigned long long)dstats.fsyncs,
          (unsigned long long)dstats.records_synced, dstats.MeanGroup(),
          (unsigned long long)dstats.checkpoints_written,
          (unsigned long long)dstats.bytes_written,
          (unsigned long long)dstats.sync_failures);
    }
  }
  if (flags.validate) {
    Status valid = ValidateReplay(pristine.get(), rules, result.log);
    std::printf("replay validation: %s\n", valid.ToString().c_str());
    if (!valid.ok()) return 1;
  }
  if (flags.audit) {
    ConsistencyAuditor auditor;
    for (const auto& record : result.log) {
      auditor.AddCommit(record.seq, record.delta, record.audit);
    }
    const AuditReport audit = auditor.Finish();
    std::printf("consistency audit: %s\n", audit.ToString().c_str());
    if (!audit.clean()) return 1;
    if (!flags.journal_dir.empty()) {
      auto wal_audit = ConsistencyAuditor::AuditWalFile(
          RecoveryManager::JournalFileInDir(flags.journal_dir));
      if (!wal_audit.ok()) {
        std::fprintf(stderr, "WAL audit failed: %s\n",
                     wal_audit.status().ToString().c_str());
        return 1;
      }
      std::printf("WAL audit: %s\n",
                  wal_audit.ValueOrDie().ToString().c_str());
      if (!wal_audit.ValueOrDie().clean()) return 1;
    }
  }
  if (flags.dump_final) {
    std::printf("%s", wm.ToString().c_str());
  }
  if (!flags.query.empty()) {
    auto rows = ExecuteQuery(wm, flags.query);
    if (!rows.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   rows.status().ToString().c_str());
      return 1;
    }
    std::printf("query matched %zu row(s):\n", rows->size());
    for (const auto& row : rows.ValueOrDie()) {
      for (const auto& wme : row) {
        std::printf("  %s", wme->ToString().c_str());
      }
      std::printf("\n");
    }
  }
  if (!flags.journal_out.empty()) {
    std::vector<Delta> deltas;
    deltas.reserve(result.log.size());
    for (const auto& record : result.log) deltas.push_back(record.delta);
    auto journal = DeltasToJournal(deltas);
    if (!journal.ok()) {
      std::fprintf(stderr, "journal failed: %s\n",
                   journal.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(flags.journal_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n",
                   flags.journal_out.c_str());
      return 1;
    }
    out << journal.ValueOrDie();
    if (!flags.quiet) {
      std::printf("journal written to %s\n", flags.journal_out.c_str());
    }
  }
  if (!flags.snapshot_out.empty()) {
    auto snapshot = SnapshotToSource(wm);
    if (!snapshot.ok()) {
      std::fprintf(stderr, "snapshot failed: %s\n",
                   snapshot.status().ToString().c_str());
      return 1;
    }
    std::ofstream out(flags.snapshot_out);
    if (!out) {
      std::fprintf(stderr, "cannot write '%s'\n",
                   flags.snapshot_out.c_str());
      return 1;
    }
    out << snapshot.ValueOrDie();
    if (!flags.quiet) {
      std::printf("snapshot written to %s\n", flags.snapshot_out.c_str());
    }
  }
  return result.stats.hit_max_firings ? 3 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = ParseFlags(argc, argv);
  if (!flags.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 flags.status().ToString().c_str());
    return Usage(argv[0]);
  }
  return Run(flags.ValueOrDie());
}
