#!/usr/bin/env sh
# Seed-sweeping soak harness: runs the chaos, recovery, audit, and
# matcher tiers repeatedly at DBPS_CHAOS_TRIALS=100, shifting
# DBPS_CHAOS_SEED each
# round so every round explores fresh schedules, fault points, and
# mutation sites. Per-seed failure artifacts (the full tier log) land in
# $DBPS_SOAK_DIR so a red seed can be replayed exactly:
#
#   DBPS_CHAOS_SEED=<seed> DBPS_CHAOS_TRIALS=100 DBPS_TIER=<tier> tools/check.sh
#
# Usage:
#   tools/soak.sh                 # 10 rounds from seed 1000, stride 1000
#   tools/soak.sh 25              # 25 rounds
#   tools/soak.sh 25 77           # 25 rounds starting at seed 77
#
# Environment:
#   DBPS_SOAK_DIR      artifact directory (default build/soak)
#   DBPS_SOAK_TIERS    tiers to sweep (default "chaos recovery audit
#                      matcher" — matcher covers the differential suite
#                      with splitting/re-homing/pipelining armed)
#   DBPS_CHAOS_TRIALS  trial multiplier per tier run (default 100)
#   DBPS_SANITIZE      forwarded to check.sh (e.g. thread for TSan soaks)
#
# Exits nonzero if any (tier, seed) cell failed; the summary names each
# failing cell and its saved log.
set -u

cd "$(dirname "$0")/.."

ROUNDS="${1:-10}"
SEED_BASE="${2:-1000}"
STRIDE=1000
TRIALS="${DBPS_CHAOS_TRIALS:-100}"
TIERS="${DBPS_SOAK_TIERS:-chaos recovery audit matcher}"
SOAK_DIR="${DBPS_SOAK_DIR:-build/soak}"
mkdir -p "$SOAK_DIR"

# Build once up front (check.sh would rebuild per cell otherwise; this
# makes per-cell failures attributable to the seed, not the build).
cmake -B build -S . -DDBPS_SANITIZE="${DBPS_SANITIZE:-}" >/dev/null
cmake --build build -j "$(nproc 2>/dev/null || echo 4)"

failures=""
cells=0
round=0
seed="$SEED_BASE"
while [ "$round" -lt "$ROUNDS" ]; do
  seed=$((SEED_BASE + round * STRIDE))
  for tier in $TIERS; do
    cells=$((cells + 1))
    log="$SOAK_DIR/${tier}_seed${seed}.log"
    echo "[soak] tier=$tier seed=$seed trials=$TRIALS -> $log"
    if DBPS_TIER="$tier" DBPS_CHAOS_SEED="$seed" DBPS_CHAOS_TRIALS="$TRIALS" \
        tools/check.sh >"$log" 2>&1; then
      # Keep the artifact directory to failures only.
      rm -f "$log"
    else
      failures="$failures $tier:$seed"
      echo "[soak] FAILED tier=$tier seed=$seed (log kept: $log)"
    fi
  done
  round=$((round + 1))
done

echo ""
if [ -n "$failures" ]; then
  echo "[soak] $cells cells, FAILURES:$failures"
  echo "[soak] replay one with:"
  for cell in $failures; do
    tier="${cell%%:*}"
    seed="${cell##*:}"
    echo "  DBPS_TIER=$tier DBPS_CHAOS_SEED=$seed DBPS_CHAOS_TRIALS=$TRIALS tools/check.sh"
  done
  exit 1
fi
echo "[soak] all $cells cells green (tiers: $TIERS; seeds $SEED_BASE..$seed)"
